#include "petri/invariants.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>

#include "util/error.h"

namespace camad::petri {
namespace {

using Row = std::vector<std::int64_t>;
using Matrix = std::vector<Row>;

std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  return std::gcd(a < 0 ? -a : a, b < 0 ? -b : b);
}

/// Divides a row by the gcd of its entries. No-op for the zero row.
void reduce_row(Row& row) {
  std::int64_t g = 0;
  for (std::int64_t v : row) g = gcd64(g, v);
  if (g == 0) return;
  for (std::int64_t& v : row) v /= g;
}

/// reduce_row plus a sign flip making the first nonzero entry positive.
/// NOT for Farkas rows — flipping would destroy their nonnegativity.
void normalize_row(Row& row) {
  reduce_row(row);
  for (std::int64_t v : row) {
    if (v != 0) {
      if (v < 0) {
        for (std::int64_t& w : row) w = -w;
      }
      break;
    }
  }
}

/// Integer basis of {x : M x = 0} via fraction-free Gaussian elimination.
/// Entries stay exact; intermediates use __int128 and are re-normalized
/// per row to keep magnitudes small (net matrices have entries in {-1,0,1}).
Matrix null_space_basis(Matrix m, std::size_t cols) {
  const std::size_t rows = m.size();
  std::vector<std::size_t> pivot_col;  // pivot column of each pivot row

  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols && rank < rows; ++col) {
    // Find pivot.
    std::size_t pivot = rank;
    while (pivot < rows && m[pivot][col] == 0) ++pivot;
    if (pivot == rows) continue;
    std::swap(m[rank], m[pivot]);

    for (std::size_t r = 0; r < rows; ++r) {
      if (r == rank || m[r][col] == 0) continue;
      const std::int64_t a = m[rank][col];
      const std::int64_t b = m[r][col];
      for (std::size_t c = 0; c < cols; ++c) {
        const __int128 value = static_cast<__int128>(m[r][c]) * a -
                               static_cast<__int128>(m[rank][c]) * b;
        if (value > std::numeric_limits<std::int64_t>::max() ||
            value < std::numeric_limits<std::int64_t>::min()) {
          throw Error("null_space_basis: coefficient overflow");
        }
        m[r][c] = static_cast<std::int64_t>(value);
      }
      normalize_row(m[r]);
    }
    pivot_col.push_back(col);
    ++rank;
  }

  // Free columns parametrize the null space.
  std::vector<bool> is_pivot(cols, false);
  for (std::size_t c : pivot_col) is_pivot[c] = true;

  Matrix basis;
  for (std::size_t free_col = 0; free_col < cols; ++free_col) {
    if (is_pivot[free_col]) continue;
    Row x(cols, 0);
    // Set the free variable to the lcm of pivot entries so the solution is
    // integral: x[pivot] = -m[r][free] * (L / m[r][pivot]).
    std::int64_t lcm = 1;
    for (std::size_t r = 0; r < rank; ++r) {
      const std::int64_t p = m[r][pivot_col[r]] < 0 ? -m[r][pivot_col[r]]
                                                    : m[r][pivot_col[r]];
      lcm = lcm / gcd64(lcm, p) * p;
    }
    x[free_col] = lcm;
    for (std::size_t r = 0; r < rank; ++r) {
      x[pivot_col[r]] = -m[r][free_col] * (lcm / m[r][pivot_col[r]]);
    }
    normalize_row(x);
    basis.push_back(std::move(x));
  }
  return basis;
}

Matrix transpose(const Matrix& m, std::size_t cols) {
  Matrix out(cols, Row(m.size(), 0));
  for (std::size_t r = 0; r < m.size(); ++r) {
    for (std::size_t c = 0; c < cols; ++c) out[c][r] = m[r][c];
  }
  return out;
}

}  // namespace

Matrix incidence_matrix(const Net& net) {
  Matrix c(net.place_count(), Row(net.transition_count(), 0));
  for (TransitionId t : net.transitions()) {
    for (PlaceId p : net.pre(t)) c[p.index()][t.index()] -= 1;
    for (PlaceId p : net.post(t)) c[p.index()][t.index()] += 1;
  }
  return c;
}

Matrix p_invariant_basis(const Net& net) {
  // yᵀC = 0  <=>  Cᵀ y = 0.
  const Matrix c = incidence_matrix(net);
  return null_space_basis(transpose(c, net.transition_count()),
                          net.place_count());
}

Matrix t_invariant_basis(const Net& net) {
  return null_space_basis(incidence_matrix(net), net.transition_count());
}

bool is_p_invariant(const Net& net, const Row& y) {
  if (y.size() != net.place_count()) return false;
  bool nonzero = false;
  for (std::int64_t v : y) nonzero |= (v != 0);
  if (!nonzero) return false;
  for (TransitionId t : net.transitions()) {
    std::int64_t sum = 0;
    for (PlaceId p : net.pre(t)) sum -= y[p.index()];
    for (PlaceId p : net.post(t)) sum += y[p.index()];
    if (sum != 0) return false;
  }
  return true;
}

bool is_t_invariant(const Net& net, const Row& x) {
  if (x.size() != net.transition_count()) return false;
  bool nonzero = false;
  for (std::int64_t v : x) nonzero |= (v != 0);
  if (!nonzero) return false;
  for (PlaceId p : net.places()) {
    std::int64_t sum = 0;
    for (TransitionId t : net.pre(p)) sum += x[t.index()];
    for (TransitionId t : net.post(p)) sum -= x[t.index()];
    if (sum != 0) return false;
  }
  return true;
}

Matrix semi_positive_p_invariants(const Net& net) {
  // Farkas' algorithm on [C | I]: eliminate transition columns by
  // nonnegative row combinations; surviving identity parts are the minimal
  // semi-positive P-invariants. Row count is capped to avoid the
  // exponential worst case (fork/join control nets stay tiny).
  constexpr std::size_t kMaxRows = 4096;
  const std::size_t ns = net.place_count();
  const std::size_t nt = net.transition_count();

  const Matrix c = incidence_matrix(net);
  Matrix d;
  d.reserve(ns);
  for (std::size_t p = 0; p < ns; ++p) {
    Row row(nt + ns, 0);
    for (std::size_t t = 0; t < nt; ++t) row[t] = c[p][t];
    row[nt + p] = 1;
    d.push_back(std::move(row));
  }

  for (std::size_t col = 0; col < nt; ++col) {
    Matrix next;
    // Keep rows already zero in this column.
    for (const Row& row : d) {
      if (row[col] == 0) next.push_back(row);
    }
    // Combine opposite-sign pairs.
    for (std::size_t i = 0; i < d.size(); ++i) {
      if (d[i][col] <= 0) continue;
      for (std::size_t j = 0; j < d.size(); ++j) {
        if (d[j][col] >= 0) continue;
        Row combo(nt + ns);
        const std::int64_t a = -d[j][col];
        const std::int64_t b = d[i][col];
        for (std::size_t k = 0; k < nt + ns; ++k) {
          combo[k] = a * d[i][k] + b * d[j][k];
        }
        reduce_row(combo);
        if (std::find(next.begin(), next.end(), combo) == next.end()) {
          next.push_back(std::move(combo));
        }
        if (next.size() > kMaxRows) {
          throw Error("semi_positive_p_invariants: row explosion");
        }
      }
    }
    d = std::move(next);
  }

  Matrix invariants;
  for (const Row& row : d) {
    Row y(row.begin() + static_cast<std::ptrdiff_t>(nt), row.end());
    bool nonzero = false;
    bool nonneg = true;
    for (std::int64_t v : y) {
      nonzero |= (v != 0);
      nonneg &= (v >= 0);
    }
    if (nonzero && nonneg) invariants.push_back(std::move(y));
  }
  return invariants;
}

bool covered_by_safe_invariants(const Net& net) {
  // Terminating nets (transitions with an empty post-set, Def 3.1 rule 6)
  // conserve no weighted token sum, so the raw net has no semi-positive
  // P-invariants at all. Close the net with a write-only "idle" place
  // that every draining transition feeds: the closed net simulates the
  // original exactly (idle only accumulates), so its invariants bound the
  // original's reachable markings. Coverage is then required only for the
  // original places.
  Net closed = net;
  const PlaceId idle = closed.add_place("idle");
  bool any_drain = false;
  for (TransitionId t : closed.transitions()) {
    if (closed.post(t).empty()) {
      closed.connect(t, idle);
      any_drain = true;
    }
  }
  const Net& analysis_net = any_drain ? closed : net;

  const Matrix invariants = semi_positive_p_invariants(analysis_net);
  std::vector<bool> covered(net.place_count(), false);
  for (const Row& y : invariants) {
    // Initial weighted token sum (idle starts empty, contributes 0).
    std::int64_t sum = 0;
    for (PlaceId p : analysis_net.places()) {
      sum += y[p.index()] *
             static_cast<std::int64_t>(analysis_net.initial_tokens(p));
    }
    if (sum > 1) continue;  // invariant admits 2+ tokens on a unit place
    for (std::size_t p = 0; p < net.place_count(); ++p) {
      if (y[p] >= 1) covered[p] = true;
    }
  }
  return std::all_of(covered.begin(), covered.end(),
                     [](bool b) { return b; });
}

}  // namespace camad::petri
