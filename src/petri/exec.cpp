#include "petri/exec.h"

#include "util/error.h"

namespace camad::petri {

bool is_enabled(const Net& net, const Marking& m, TransitionId t) {
  const std::vector<PlaceId>& pre = net.pre(t);
  if (net.is_ordinary()) {
    for (PlaceId p : pre) {
      if (m.tokens(p) == 0) return false;
    }
    return true;
  }
  // Weighted (multiset) pre-set: place p must carry at least as many
  // tokens as its multiplicity among the entries. Pre-sets are tiny, so
  // the quadratic count beats allocating a scratch histogram.
  for (std::size_t i = 0; i < pre.size(); ++i) {
    bool counted_before = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (pre[j] == pre[i]) {
        counted_before = true;
        break;
      }
    }
    if (counted_before) continue;
    std::uint32_t need = 1;
    for (std::size_t j = i + 1; j < pre.size(); ++j) {
      if (pre[j] == pre[i]) ++need;
    }
    if (m.tokens(pre[i]) < need) return false;
  }
  return true;
}

std::vector<TransitionId> enabled_transitions(const Net& net, const Marking& m,
                                              const GuardFn& guard) {
  std::vector<TransitionId> out;
  for (TransitionId t : net.transitions()) {
    if (is_enabled(net, m, t) && (!guard || guard(t))) out.push_back(t);
  }
  return out;
}

Marking fire(const Net& net, const Marking& m, TransitionId t) {
  if (!is_enabled(net, m, t)) {
    throw ModelError("fire: transition " + net.name(t) + " not enabled");
  }
  Marking next = m;
  for (PlaceId p : net.pre(t)) next.remove_token(p);
  for (PlaceId p : net.post(t)) next.add_token(p);
  return next;
}

std::vector<TransitionId> fire_maximal_step(const Net& net, Marking& m,
                                            const GuardFn& guard) {
  std::vector<TransitionId> order = net.transitions();
  return fire_step_in_order(net, m, order, guard);
}

std::vector<TransitionId> fire_step_in_order(
    const Net& net, Marking& m, const std::vector<TransitionId>& order,
    const GuardFn& guard) {
  // True *step* semantics: every transition in the step must be enabled by
  // the marking at step start; tokens produced within the step are only
  // visible afterwards. Consumption is tracked against the start marking
  // to resolve conflicts (first in `order` wins), production accumulates
  // separately.
  std::vector<TransitionId> fired;
  Marking available = m;
  Marking produced(m.place_count());
  for (TransitionId t : order) {
    if (!is_enabled(net, available, t)) continue;
    if (guard && !guard(t)) continue;
    for (PlaceId p : net.pre(t)) available.remove_token(p);
    for (PlaceId p : net.post(t)) produced.add_token(p);
    fired.push_back(t);
  }
  for (PlaceId p : net.places()) {
    m.set_tokens(p, available.tokens(p) + produced.tokens(p));
  }
  return fired;
}

}  // namespace camad::petri
