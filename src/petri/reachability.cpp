#include "petri/reachability.h"

#include <deque>

#include "petri/exec.h"
#include <unordered_set>

#include "util/error.h"

namespace camad::petri {
namespace {

/// Shared BFS core; `visit` is called once per distinct reachable marking.
template <typename Visit>
ReachabilityResult explore_impl(const Net& net,
                                const ReachabilityOptions& options,
                                Visit&& visit) {
  ReachabilityResult result;
  std::unordered_set<Marking, MarkingHash> seen;
  std::deque<Marking> frontier;

  const Marking m0 = Marking::initial(net);
  seen.insert(m0);
  frontier.push_back(m0);

  result.complete = true;
  while (!frontier.empty()) {
    const Marking current = frontier.front();
    frontier.pop_front();
    ++result.marking_count;
    visit(current);

    if (!current.is_safe() && !result.unsafe_witness) {
      result.safe = false;
      result.unsafe_witness = current;
    }

    bool bounded_here = true;
    for (PlaceId p : net.places()) {
      if (current.tokens(p) > options.token_bound) {
        result.bounded = false;
        bounded_here = false;
      }
    }
    if (!bounded_here) continue;  // cut off runaway branches

    bool any_fired = false;
    for (TransitionId t : net.transitions()) {
      if (!is_enabled(net, current, t)) continue;
      any_fired = true;
      Marking next = fire(net, current, t);
      if (seen.insert(next).second) {
        if (seen.size() > options.max_markings) {
          result.complete = false;
          return result;
        }
        frontier.push_back(std::move(next));
      }
    }
    if (!any_fired) {
      if (current.total() == 0) {
        result.can_terminate = true;
      } else if (!result.deadlock_witness) {
        result.deadlock = true;
        result.deadlock_witness = current;
      }
    }
  }
  return result;
}

}  // namespace

ReachabilityResult explore(const Net& net, const ReachabilityOptions& options) {
  return explore_impl(net, options, [](const Marking&) {});
}

MarkingSet collect_markings(const Net& net,
                            const ReachabilityOptions& options) {
  MarkingSet out;
  out.exploration = explore_impl(
      net, options, [&out](const Marking& m) { out.markings.push_back(m); });
  return out;
}

ConcurrencyRelation concurrent_places_bounded(
    const Net& net, const ReachabilityOptions& options) {
  const std::size_t n = net.place_count();
  ConcurrencyRelation out;
  out.concurrent.assign(n * n, false);
  out.exploration = explore_impl(net, options, [&](const Marking& m) {
    const std::vector<PlaceId> marked = m.marked_places();
    for (std::size_t a = 0; a < marked.size(); ++a) {
      for (std::size_t b = a + 1; b < marked.size(); ++b) {
        out.concurrent[marked[a].index() * n + marked[b].index()] = true;
        out.concurrent[marked[b].index() * n + marked[a].index()] = true;
      }
      // A place marked with >= 2 tokens is concurrent with itself.
      if (m.tokens(marked[a]) >= 2) {
        out.concurrent[marked[a].index() * n + marked[a].index()] = true;
      }
    }
  });
  return out;
}

std::vector<Marking> reachable_markings(const Net& net,
                                        const ReachabilityOptions& options) {
  MarkingSet set = collect_markings(net, options);
  if (!set.exploration.complete) {
    throw Error("reachable_markings: state space exceeds max_markings");
  }
  return std::move(set.markings);
}

std::vector<bool> concurrent_places(const Net& net,
                                    const ReachabilityOptions& options) {
  ConcurrencyRelation relation = concurrent_places_bounded(net, options);
  if (!relation.exploration.complete) {
    throw Error("concurrent_places: state space exceeds max_markings");
  }
  return std::move(relation.concurrent);
}

}  // namespace camad::petri
