// Structural (linear-algebraic) Petri-net invariants.
//
// With incidence matrix C (|S| rows, |T| columns, C[p][t] = post - pre):
//   * a P-invariant is an integer vector y ≥ 0, y ≠ 0 with yᵀC = 0 —
//     the y-weighted token sum is constant under firing; a net covered by
//     P-invariants with all initial sums ≤ 1 is safe without state-space
//     exploration (used as the fast path of the Def 3.2 safety check);
//   * a T-invariant is x ≥ 0, x ≠ 0 with Cx = 0 — a firing-count vector
//     returning the net to its start (cyclic schedules).
//
// We compute a rational basis of the relevant null space with exact
// fraction-free Gaussian elimination, scale to primitive integer vectors,
// and (for the nonnegative queries) search small nonnegative combinations.
#pragma once

#include <cstdint>
#include <vector>

#include "petri/net.h"

namespace camad::petri {

/// Incidence matrix C with C[p][t] = tokens produced - tokens consumed.
std::vector<std::vector<std::int64_t>> incidence_matrix(const Net& net);

/// Basis of the integer left null space of C (P-invariant space).
/// Vectors are primitive (gcd 1) with positive leading entry; entries may
/// be negative — nonnegativity is a property of *semi-positive* invariants,
/// queried separately.
std::vector<std::vector<std::int64_t>> p_invariant_basis(const Net& net);

/// Basis of the integer right null space of C (T-invariant space).
std::vector<std::vector<std::int64_t>> t_invariant_basis(const Net& net);

/// True iff `y` is a P-invariant of the net (yᵀC = 0).
bool is_p_invariant(const Net& net, const std::vector<std::int64_t>& y);
/// True iff `x` is a T-invariant of the net (Cx = 0).
bool is_t_invariant(const Net& net, const std::vector<std::int64_t>& x);

/// Semi-positive P-invariants found by combining basis vectors (best
/// effort; complete for the fork/join nets the compiler emits).
std::vector<std::vector<std::int64_t>> semi_positive_p_invariants(
    const Net& net);

/// Structural safety certificate: every place is covered by a semi-positive
/// P-invariant whose initial weighted token count is <= 1. Sufficient (not
/// necessary) for safety; O(poly) vs reachability's exponential worst case.
bool covered_by_safe_invariants(const Net& net);

}  // namespace camad::petri
