// Explicit-state reachability analysis.
//
// Used by the dcf::check layer to decide Def 3.2 condition (2) — the
// control net must be *safe* — and to detect dead markings. Exploration
// treats every transition as fireable (guards ignored), which
// over-approximates the guarded behaviour: if the unguarded net is safe,
// the guarded one is too.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "petri/marking.h"
#include "petri/net.h"

namespace camad::petri {

struct ReachabilityOptions {
  /// Exploration stops (incomplete) after this many distinct markings.
  std::size_t max_markings = 1u << 20;
  /// A place exceeding this token count makes the net reported unbounded
  /// (exploration of that branch is cut off).
  std::uint32_t token_bound = 8;
  /// Interleaving semantics: explore single-transition successors. This is
  /// sufficient for safety/boundedness of ordinary nets.

  friend bool operator==(const ReachabilityOptions&,
                         const ReachabilityOptions&) = default;
};

struct ReachabilityResult {
  bool complete = false;   ///< full state space was explored
  bool safe = true;        ///< every reached marking is 0/1 per place
  bool bounded = true;     ///< no place exceeded token_bound
  bool deadlock = false;   ///< a non-terminal dead marking was reached
  bool can_terminate = false;  ///< the zero marking is reachable
  std::size_t marking_count = 0;
  std::optional<Marking> unsafe_witness;
  std::optional<Marking> deadlock_witness;
};

/// Breadth-first exploration from the initial marking.
/// A dead marking with zero tokens total is *termination* (Def 3.1 rule 6),
/// not deadlock; any other dead marking counts as deadlock.
ReachabilityResult explore(const Net& net,
                           const ReachabilityOptions& options = {});

/// Bounded marking collection: exploration status plus every *visited*
/// marking. Never throws on a budget cutoff — check
/// `exploration.complete` to tell a full enumeration from a prefix.
struct MarkingSet {
  ReachabilityResult exploration;
  std::vector<Marking> markings;
};
MarkingSet collect_markings(const Net& net,
                            const ReachabilityOptions& options = {});

/// Bounded concurrency relation: `concurrent[i*|S|+j]` is true iff some
/// visited marking marks both place i and place j (and `i*|S|+i` iff
/// some visited marking puts >= 2 tokens on place i). When
/// `exploration.complete` is false the relation is an under-approximation
/// over the visited prefix — callers needing soundness for legality
/// decisions must check completeness (or use the throwing wrapper below).
struct ConcurrencyRelation {
  ReachabilityResult exploration;
  std::vector<bool> concurrent;
};
ConcurrencyRelation concurrent_places_bounded(
    const Net& net, const ReachabilityOptions& options = {});

/// All reachable markings (throws Error if exploration is incomplete).
/// Prefer collect_markings when a cutoff is a reportable outcome rather
/// than an error.
std::vector<Marking> reachable_markings(
    const Net& net, const ReachabilityOptions& options = {});

/// Place-concurrency relation from reachability: result[i*|S|+j] is true
/// iff some reachable marking marks both place i and place j (i != j).
/// This is the *semantic* refinement of the paper's structural ∥ relation;
/// see petri/order.h for the structural one. Throws Error if exploration
/// is incomplete; prefer concurrent_places_bounded where a cutoff must
/// degrade gracefully.
std::vector<bool> concurrent_places(const Net& net,
                                    const ReachabilityOptions& options = {});

}  // namespace camad::petri
