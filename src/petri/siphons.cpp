#include "petri/siphons.h"

#include <algorithm>

#include "util/bitset.h"

namespace camad::petri {
namespace {

DynamicBitset to_set(const Net& net, const std::vector<PlaceId>& places) {
  DynamicBitset set(net.place_count());
  for (PlaceId p : places) set.set(p.index());
  return set;
}

std::vector<PlaceId> to_places(const DynamicBitset& set) {
  std::vector<PlaceId> out;
  set.for_each([&](std::size_t i) {
    out.emplace_back(static_cast<PlaceId::underlying_type>(i));
  });
  return out;
}

/// Iteratively removes places violating the closure property until the
/// set is stable. `violates(p, set)` returns true when p must leave.
template <typename Violates>
DynamicBitset prune(const Net& net, DynamicBitset set, Violates&& violates) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (PlaceId p : net.places()) {
      if (set.test(p.index()) && violates(p, set)) {
        set.reset(p.index());
        changed = true;
      }
    }
  }
  return set;
}

/// Siphon condition for p within `set`: every transition feeding p must
/// also consume from the set. Violation: ∃t ∈ •p with •t ∩ set = ∅.
bool siphon_violation(const Net& net, PlaceId p, const DynamicBitset& set) {
  for (TransitionId t : net.pre(p)) {
    bool consumes_from_set = false;
    for (PlaceId q : net.pre(t)) {
      if (set.test(q.index())) consumes_from_set = true;
    }
    if (!consumes_from_set) return true;
  }
  return false;
}

/// Trap condition for p within `set`: every transition consuming p must
/// also feed the set. Violation: ∃t ∈ p• with t• ∩ set = ∅.
bool trap_violation(const Net& net, PlaceId p, const DynamicBitset& set) {
  for (TransitionId t : net.post(p)) {
    bool feeds_set = false;
    for (PlaceId q : net.post(t)) {
      if (set.test(q.index())) feeds_set = true;
    }
    if (!feeds_set) return true;
  }
  return false;
}

}  // namespace

std::vector<PlaceId> greatest_siphon_within(
    const Net& net, const std::vector<PlaceId>& candidates) {
  return to_places(prune(net, to_set(net, candidates),
                         [&](PlaceId p, const DynamicBitset& set) {
                           return siphon_violation(net, p, set);
                         }));
}

std::vector<PlaceId> greatest_trap_within(
    const Net& net, const std::vector<PlaceId>& candidates) {
  return to_places(prune(net, to_set(net, candidates),
                         [&](PlaceId p, const DynamicBitset& set) {
                           return trap_violation(net, p, set);
                         }));
}

bool is_siphon(const Net& net, const std::vector<PlaceId>& places) {
  if (places.empty()) return false;
  const DynamicBitset set = to_set(net, places);
  for (PlaceId p : places) {
    if (siphon_violation(net, p, set)) return false;
  }
  return true;
}

bool is_trap(const Net& net, const std::vector<PlaceId>& places) {
  if (places.empty()) return false;
  const DynamicBitset set = to_set(net, places);
  for (PlaceId p : places) {
    if (trap_violation(net, p, set)) return false;
  }
  return true;
}

SiphonAlarm check_unmarked_siphons(const Net& net) {
  std::vector<PlaceId> unmarked;
  for (PlaceId p : net.places()) {
    if (net.initial_tokens(p) == 0) unmarked.push_back(p);
  }
  SiphonAlarm alarm;
  alarm.unmarked_siphon = greatest_siphon_within(net, unmarked);
  return alarm;
}

}  // namespace camad::petri
