// Structural order relations of Def 2.3.
//
// Over X = S ∪ T with the flow relation F, the paper defines:
//   F⁺            transitive closure of F,
//   S_i ⇒ S_j     iff (S_i, S_j) ∈ F⁺          (sequential "before"),
//   α = ⇒ ∪ ⇐     (sequential order),
//   ∥ = S×S \ α   (parallel order).
//
// Two notes the implementation documents and tests pin down:
//  * The diagonal is excluded from ∥: a state is never "parallel with
//    itself" (the paper's set formula would otherwise contradict Def 3.2's
//    disjointness requirement for every acyclic net).
//  * ∥ is a structural over-approximation of true concurrency: exclusive
//    alternatives (if/else branches) are structurally unordered and hence
//    classified parallel although no reachable marking marks both. The
//    semantic refinement is petri::concurrent_places().
#pragma once

#include <vector>

#include "petri/net.h"
#include "util/bitset.h"

namespace camad::petri {

class OrderRelations {
 public:
  explicit OrderRelations(const Net& net);

  /// S_i ⇒ S_j: a directed F-path from place i to place j exists.
  [[nodiscard]] bool before(PlaceId i, PlaceId j) const {
    return closure_[i.index()].test(j.index());
  }
  /// S_i α S_j: sequential order (either direction).
  [[nodiscard]] bool sequential(PlaceId i, PlaceId j) const {
    return before(i, j) || before(j, i);
  }
  /// S_i ∥ S_j: parallel order (distinct and not sequential).
  [[nodiscard]] bool parallel(PlaceId i, PlaceId j) const {
    return i != j && !sequential(i, j);
  }
  /// S_i and S_j lie on a common cycle (both ⇒ directions hold).
  [[nodiscard]] bool in_loop(PlaceId i, PlaceId j) const {
    return before(i, j) && before(j, i);
  }

  /// All places parallel to `i`.
  [[nodiscard]] std::vector<PlaceId> parallel_set(PlaceId i) const;

  [[nodiscard]] std::size_t place_count() const { return closure_.size(); }

  /// Identical F⁺ closures (used by the analysis-cache soundness tests).
  friend bool operator==(const OrderRelations&,
                         const OrderRelations&) = default;

 private:
  std::vector<DynamicBitset> closure_;  // place -> reachable places via F⁺
};

}  // namespace camad::petri
