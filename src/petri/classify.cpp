#include "petri/classify.h"

#include <algorithm>

namespace camad::petri {

bool is_state_machine(const Net& net) {
  for (TransitionId t : net.transitions()) {
    if (net.pre(t).size() != 1 || net.post(t).size() != 1) return false;
  }
  return true;
}

bool is_marked_graph(const Net& net) {
  for (PlaceId p : net.places()) {
    if (net.pre(p).size() != 1 || net.post(p).size() != 1) return false;
  }
  return true;
}

bool is_free_choice(const Net& net) {
  // For every arc (p, t): |post(p)| == 1 or |pre(t)| == 1.
  for (PlaceId p : net.places()) {
    if (net.post(p).size() <= 1) continue;
    for (TransitionId t : net.post(p)) {
      if (net.pre(t).size() != 1) return false;
    }
  }
  return true;
}

bool is_extended_free_choice(const Net& net) {
  // Transitions sharing any input place must have identical pre-sets.
  for (PlaceId p : net.places()) {
    const auto& consumers = net.post(p);
    for (std::size_t i = 0; i + 1 < consumers.size(); ++i) {
      auto a = net.pre(consumers[i]);
      auto b = net.pre(consumers[i + 1]);
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      if (a != b) return false;
    }
  }
  return true;
}

NetClass classify(const Net& net) {
  NetClass result;
  result.state_machine = is_state_machine(net);
  result.marked_graph = is_marked_graph(net);
  result.free_choice = is_free_choice(net);
  result.extended_free_choice = result.free_choice ||
                                is_extended_free_choice(net);
  return result;
}

std::string NetClass::to_string() const {
  std::string out;
  auto add = [&](bool flag, const char* name) {
    if (!flag) return;
    if (!out.empty()) out += ", ";
    out += name;
  };
  add(state_machine, "state-machine");
  add(marked_graph, "marked-graph");
  add(free_choice, "free-choice");
  add(!free_choice && extended_free_choice, "extended-free-choice");
  if (out.empty()) out = "general";
  return out;
}

}  // namespace camad::petri
