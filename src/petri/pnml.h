// PNML (ISO/IEC 15909-2) Place/Transition-net import.
//
// `from_pnml` is the exact inverse of `to_pnml`: a dependency-free reader
// for the P/T-net core of the standard — places, transitions, arcs with
// `<inscription>` weights, `<initialMarking>`, `<name>` labels, and nested
// `<page>` structure. It accepts documents produced by other tools (Model
// Checking Contest instances, ltsmin, TINA, ...) as long as they stay in
// the P/T fragment: high-level annotations and reference nodes are
// rejected with a structured error, and unknown elements (graphics,
// toolspecific extensions) are skipped.
//
// The reader never crashes on malformed input: every failure — truncated
// XML, bad entities, missing ids, dangling arc endpoints, oversized
// weights — throws ParseError with a line:column position.
#pragma once

#include <string>
#include <string_view>

#include "petri/net.h"

namespace camad::petri {

/// Largest accepted `<inscription>` arc weight. Weighted arcs are stored
/// as that many multiset entries, so an absurd weight would be a memory
/// amplification vector; real P/T benchmarks stay far below this.
inline constexpr std::uint32_t kMaxPnmlArcWeight = 4096;

/// Largest accepted `<initialMarking>` token count.
inline constexpr std::uint32_t kMaxPnmlInitialTokens = 1U << 20;

/// Result of importing a PNML document (the first `<net>` element).
struct PnmlImport {
  Net net;
  std::string net_id;    ///< `id` attribute of the `<net>` element
  std::string net_type;  ///< `type` attribute (empty when absent)
};

/// Parses PNML text into a marked net. Place/transition order follows
/// document order; arcs connect in document order with duplicate
/// (source, target) arcs accumulated into one weighted arc, so feeding
/// `to_pnml` output back through yields an identical structure.
/// Throws ParseError (with position) on any malformed input.
PnmlImport from_pnml(std::string_view text);

/// Structural equality up to arc-entry interleaving: same counts, names,
/// initial tokens, and per-transition pre/post multisets. This is the
/// isomorphism the PNML round-trip property asserts.
[[nodiscard]] bool same_structure(const Net& a, const Net& b);

}  // namespace camad::petri
