// Structural net classes.
//
// The classical subclasses drive which analyses are exact:
//   * state machine  — every transition has one input and one output
//                      place (no concurrency; the control FSM case);
//   * marked graph   — every place has one input and one output
//                      transition (no conflict; pure fork/join pipelines,
//                      what `parallelize` emits inside a segment);
//   * free choice    — conflicts are localized: if two transitions share
//                      an input place, that place is their only input
//                      (guarded branches compile to this shape).
#pragma once

#include <string>

#include "petri/net.h"

namespace camad::petri {

struct NetClass {
  bool state_machine = false;
  bool marked_graph = false;
  bool free_choice = false;
  /// Extended free choice: equal pre-sets for transitions in conflict.
  bool extended_free_choice = false;

  [[nodiscard]] std::string to_string() const;
};

NetClass classify(const Net& net);

bool is_state_machine(const Net& net);
bool is_marked_graph(const Net& net);
bool is_free_choice(const Net& net);
bool is_extended_free_choice(const Net& net);

}  // namespace camad::petri
