// Timed Petri-net performance analysis for (strongly connected) marked
// graphs.
//
// Ramchandani's classic result: in a timed marked graph the minimum
// achievable cycle time (inverse throughput) equals the *maximum cycle
// ratio* over directed cycles C of the underlying graph:
//
//     π = max over cycles C of  ( Σ delays on C ) / ( Σ tokens on C )
//
// A pipelined loop's steady-state period is therefore a structural
// quantity — no simulation needed. We compute π by parametric search:
// π is feasible iff the graph with edge weights (delay − π·tokens) has
// no positive cycle (checked by Bellman-Ford), and binary-search π.
#pragma once

#include <optional>

#include "petri/net.h"

namespace camad::petri {

/// Per-transition firing delays; index by TransitionId.
using TransitionDelays = std::vector<double>;

struct CycleTimeResult {
  /// Maximum cycle ratio π (minimum steady-state period). 0 when the
  /// net has no directed cycle (a pipeline drains in finite time).
  double min_cycle_time = 0;
  /// False when some cycle carries no token (the net deadlocks) — π is
  /// unbounded in that case and min_cycle_time is meaningless.
  bool live = true;
};

/// Analyzes a *marked graph* (every place 1-in/1-out; checked, throws
/// ModelError otherwise) with the given transition delays and the net's
/// initial marking as token counts.
CycleTimeResult marked_graph_cycle_time(const Net& net,
                                        const TransitionDelays& delays);

}  // namespace camad::petri
