#include "petri/marking.h"

namespace camad::petri {

Marking Marking::initial(const Net& net) {
  Marking m(net.place_count());
  for (PlaceId p : net.places()) m.set_tokens(p, net.initial_tokens(p));
  return m;
}

std::uint64_t Marking::total() const {
  std::uint64_t sum = 0;
  for (std::uint32_t t : tokens_) sum += t;
  return sum;
}

bool Marking::is_safe() const {
  for (std::uint32_t t : tokens_) {
    if (t > 1) return false;
  }
  return true;
}

std::vector<PlaceId> Marking::marked_places() const {
  std::vector<PlaceId> out;
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    if (tokens_[i] > 0) {
      out.emplace_back(static_cast<PlaceId::underlying_type>(i));
    }
  }
  return out;
}

void Marking::marked_into(DynamicBitset& out) const {
  if (out.size() != tokens_.size()) {
    out = DynamicBitset(tokens_.size());
  } else {
    out.reset_all();
  }
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    if (tokens_[i] > 0) out.set(i);
  }
}

void Marking::marked_places_into(std::vector<PlaceId>& out) const {
  out.clear();
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    if (tokens_[i] > 0) {
      out.emplace_back(static_cast<PlaceId::underlying_type>(i));
    }
  }
}

std::size_t Marking::hash() const {
  std::size_t h = 1469598103934665603ULL;
  for (std::uint32_t t : tokens_) {
    h ^= t;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace camad::petri
