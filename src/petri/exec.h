// Token-game execution rules (Def 3.1 rules 2-6), guard-agnostic.
//
// Guarded firing (rule 4) is layered on top by dcf/sim via the `GuardFn`
// hook: a transition with guards fires only when its OR-ed guard value is
// TRUE; unguarded transitions fire freely.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "petri/marking.h"
#include "petri/net.h"

namespace camad::petri {

/// Returns true when `t` may fire at the current data-path state.
/// The default (nullptr) treats every transition as unguarded.
using GuardFn = std::function<bool(TransitionId)>;

/// Rule 3: all input places of `t` carry at least one token.
bool is_enabled(const Net& net, const Marking& m, TransitionId t);

/// Enabled transitions, optionally filtered by a guard function.
std::vector<TransitionId> enabled_transitions(const Net& net, const Marking& m,
                                              const GuardFn& guard = nullptr);

/// Rule 5: fires `t`, consuming one token per input place and producing one
/// per output place. Throws ModelError if `t` is not enabled.
Marking fire(const Net& net, const Marking& m, TransitionId t);

/// Fires a maximal non-conflicting step: scans enabled transitions in id
/// order, firing each that is still enabled after earlier firings in the
/// same step. Returns the fired set (empty = dead marking).
std::vector<TransitionId> fire_maximal_step(const Net& net, Marking& m,
                                            const GuardFn& guard = nullptr);

/// Fires the transitions of `order` that are enabled, in the given order;
/// used to exercise alternative interleavings in confluence tests.
std::vector<TransitionId> fire_step_in_order(
    const Net& net, Marking& m, const std::vector<TransitionId>& order,
    const GuardFn& guard = nullptr);

}  // namespace camad::petri
