#include "semantics/analysis.h"

#include <sstream>
#include <utility>

#include "obs/trace.h"
#include "util/error.h"

namespace camad::semantics {
namespace {

constexpr std::array<std::string_view, kAnalysisCount> kNames = {
    "reachability", "concurrency",       "order",
    "dependence",   "liveness",          "exact-concurrency"};

std::uint32_t bit(Analysis analysis) {
  return std::uint32_t{1} << static_cast<std::uint32_t>(analysis);
}

std::uint8_t dependence_key(const DependenceOptions& options) {
  std::uint8_t key = 0;
  key |= options.clause_a ? 1u : 0u;
  key |= options.clause_b ? 2u : 0u;
  key |= options.clause_c ? 4u : 0u;
  key |= options.clause_d ? 8u : 0u;
  key |= options.clause_e ? 16u : 0u;
  return key;
}

}  // namespace

std::string_view analysis_name(Analysis analysis) {
  const auto i = static_cast<std::size_t>(analysis);
  if (!(i < kAnalysisCount)) {
    throw Error("unknown analysis kind");
  }
  return kNames[i];
}

PreservedAnalyses PreservedAnalyses::all() {
  PreservedAnalyses p;
  for (std::size_t i = 0; i < kAnalysisCount; ++i) {
    p.preserve(static_cast<Analysis>(i));
  }
  return p;
}

PreservedAnalyses PreservedAnalyses::control_net() {
  return PreservedAnalyses{}
      .preserve(Analysis::kReachability)
      .preserve(Analysis::kConcurrency)
      .preserve(Analysis::kOrder);
}

PreservedAnalyses& PreservedAnalyses::preserve(Analysis analysis) {
  mask_ |= bit(analysis);
  return *this;
}

PreservedAnalyses& PreservedAnalyses::abandon(Analysis analysis) {
  mask_ &= ~bit(analysis);
  return *this;
}

bool PreservedAnalyses::preserved(Analysis analysis) const {
  return (mask_ & bit(analysis)) != 0;
}

std::string PreservedAnalyses::to_string() const {
  if (mask_ == 0) return "none";
  std::string out;
  for (std::size_t i = 0; i < kAnalysisCount; ++i) {
    if (!preserved(static_cast<Analysis>(i))) continue;
    if (!out.empty()) out += '+';
    out += kNames[i];
  }
  return out;
}

AnalysisCacheStats& AnalysisCacheStats::operator+=(
    const AnalysisCacheStats& rhs) {
  for (std::size_t i = 0; i < kAnalysisCount; ++i) {
    hits[i] += rhs.hits[i];
    misses[i] += rhs.misses[i];
    transfers[i] += rhs.transfers[i];
  }
  return *this;
}

std::size_t AnalysisCacheStats::total_hits() const {
  std::size_t n = 0;
  for (const std::size_t h : hits) n += h;
  return n;
}

std::size_t AnalysisCacheStats::total_misses() const {
  std::size_t n = 0;
  for (const std::size_t m : misses) n += m;
  return n;
}

std::size_t AnalysisCacheStats::total_transfers() const {
  std::size_t n = 0;
  for (const std::size_t t : transfers) n += t;
  return n;
}

double AnalysisCacheStats::hit_rate() const {
  const std::size_t accesses = total_hits() + total_misses();
  if (accesses == 0) return 0.0;
  return static_cast<double>(total_hits()) / static_cast<double>(accesses);
}

std::string AnalysisCacheStats::summary() const {
  std::ostringstream out;
  out << "analysis cache: " << total_hits() << " hit(s), " << total_misses()
      << " miss(es), " << total_transfers() << " transfer(s), hit rate "
      << static_cast<int>(hit_rate() * 100.0 + 0.5) << "%";
  return out.str();
}

std::string AnalysisCacheStats::to_string() const {
  std::ostringstream out;
  out << summary();
  for (std::size_t i = 0; i < kAnalysisCount; ++i) {
    if (hits[i] + misses[i] + transfers[i] == 0) continue;
    out << "\n  " << kNames[i] << ": " << hits[i] << " hit(s), " << misses[i]
        << " miss(es), " << transfers[i] << " transfer(s)";
  }
  return out.str();
}

AnalysisCache::AnalysisCache(const dcf::System& system,
                             petri::ReachabilityOptions reachability,
                             std::optional<mc::McOptions> mc_options)
    : system_(&system),
      reach_(reachability),
      mc_options_(std::move(mc_options)),
      nplaces_(system.control().net().place_count()),
      ntransitions_(system.control().net().transition_count()),
      mu_(std::make_unique<std::mutex>()) {}

const petri::ReachabilityResult& AnalysisCache::reachability() const {
  const std::lock_guard<std::mutex> lock(*mu_);
  const auto i = index(Analysis::kReachability);
  if (reachability_ == nullptr) {
    ++stats_.misses[i];
    const obs::ObsSpan span("analysis.reachability");
    reachability_ = std::make_shared<const petri::ReachabilityResult>(
        petri::explore(system_->control().net(), reach_));
  } else {
    ++stats_.hits[i];
  }
  return *reachability_;
}

const std::vector<bool>& AnalysisCache::concurrency() const {
  const std::lock_guard<std::mutex> lock(*mu_);
  const auto i = index(Analysis::kConcurrency);
  if (concurrency_ == nullptr) {
    ++stats_.misses[i];
    const obs::ObsSpan span("analysis.concurrency");
    concurrency_ = std::make_shared<const std::vector<bool>>(
        petri::concurrent_places(system_->control().net(), reach_));
  } else {
    ++stats_.hits[i];
  }
  return *concurrency_;
}

bool AnalysisCache::co_marked(petri::PlaceId a, petri::PlaceId b) const {
  return concurrency()[a.index() * nplaces_ + b.index()];
}

const petri::OrderRelations& AnalysisCache::order() const {
  const std::lock_guard<std::mutex> lock(*mu_);
  const auto i = index(Analysis::kOrder);
  if (order_ == nullptr) {
    ++stats_.misses[i];
    const obs::ObsSpan span("analysis.order");
    order_ = std::make_shared<const petri::OrderRelations>(
        system_->control().net());
  } else {
    ++stats_.hits[i];
  }
  return *order_;
}

const mc::McResult& AnalysisCache::model_check() const {
  const std::lock_guard<std::mutex> lock(*mu_);
  const auto i = index(Analysis::kExactConcurrency);
  if (exact_ == nullptr) {
    ++stats_.misses[i];
    const obs::ObsSpan span("analysis.exact-concurrency");
    mc::McOptions opt;
    if (mc_options_.has_value()) {
      opt = *mc_options_;
    } else {
      opt.max_states = reach_.max_markings;
      opt.token_bound = reach_.token_bound;
    }
    exact_ = std::make_shared<const mc::McResult>(
        mc::model_check(*system_, opt));
  } else {
    ++stats_.hits[i];
  }
  return *exact_;
}

const std::vector<bool>& AnalysisCache::exact_concurrency() const {
  return model_check().concurrency;
}

const DependenceRelation& AnalysisCache::dependence(
    const DependenceOptions& options) const {
  const std::lock_guard<std::mutex> lock(*mu_);
  const auto i = index(Analysis::kDependence);
  auto& entry = dependence_[dependence_key(options)];
  if (entry == nullptr) {
    ++stats_.misses[i];
    const obs::ObsSpan span("analysis.dependence");
    entry = std::make_shared<const DependenceRelation>(*system_, options);
  } else {
    ++stats_.hits[i];
  }
  return *entry;
}

AnalysisCache AnalysisCache::successor(
    const dcf::System& next, const PreservedAnalyses& preserved) const {
  AnalysisCache out(next, reach_, mc_options_);
  const std::lock_guard<std::mutex> lock(*mu_);
  const bool same_net_shape =
      out.nplaces_ == nplaces_ && out.ntransitions_ == ntransitions_;
  const auto carry = [&](Analysis kind, auto& from, auto& to) {
    if (!preserved.preserved(kind) || from == nullptr) return;
    to = from;
    ++out.stats_.transfers[index(kind)];
  };
  if (same_net_shape) {
    carry(Analysis::kReachability, reachability_, out.reachability_);
    carry(Analysis::kConcurrency, concurrency_, out.concurrency_);
    carry(Analysis::kOrder, order_, out.order_);
    // Unlike the pure control-net analyses above, the model check also
    // reads the data path (guard classification), so control_net() never
    // declares it; only all() — used for identical-copy rebinds — does.
    carry(Analysis::kExactConcurrency, exact_, out.exact_);
  }
  if (preserved.preserved(Analysis::kDependence) && !dependence_.empty()) {
    out.dependence_ = dependence_;
    out.stats_.transfers[index(Analysis::kDependence)] += dependence_.size();
  }
  for (std::size_t i = 0; i < kAnalysisCount; ++i) {
    if (!preserved.preserved(static_cast<Analysis>(i))) continue;
    if (slots_[i] == nullptr) continue;
    out.slots_[i] = slots_[i];
    ++out.stats_.transfers[i];
  }
  return out;
}

void AnalysisCache::warm_control() const {
  order();
  concurrency();
}

AnalysisCacheStats AnalysisCache::stats() const {
  const std::lock_guard<std::mutex> lock(*mu_);
  return stats_;
}

}  // namespace camad::semantics
