// External event structures S(Γ) = (E, ≺, ≈) — Defs 3.3-3.6.
//
// Events are keyed by *channel* (the name of the external vertex an arc
// touches) plus occurrence index, so structures extracted from two
// different systems — e.g. before and after a vertex merger that
// renumbers arcs — remain comparable as long as environment boundaries
// keep their names (which every transformation preserves).
//
//   ≺ (precedent):  E_i ≺ E_j iff E_i occurred before E_j and the
//                   controlling states satisfy S_i ⇒ S_j (Def 3.5) and
//                   are not reachably co-markable (the structural ⇒ is
//                   cycle-blind: a loop back edge F⁺-relates concurrent
//                   body states both ways, which would turn accidental
//                   cycle timing between casual events into a ≺ pair);
//   ≈ (concurrent): same instant, same controlling state.
// Unrelated events are in the paper's "casual" relation — free to occur
// in either order — and impose no constraint on equality.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "dcf/system.h"
#include "sim/trace.h"

namespace camad::semantics {

class AnalysisCache;

struct Event {
  std::string channel;       ///< external vertex name
  std::size_t occurrence;    ///< k-th event on this channel (0-based)
  dcf::Value value;
  std::uint64_t cycle;       ///< observation instant
  petri::PlaceId state;      ///< controlling control state

  friend bool operator==(const Event&, const Event&) = default;
};

class EventStructure {
 public:
  /// Events in occurrence order.
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }

  /// Value sequence of one channel.
  [[nodiscard]] std::vector<dcf::Value> channel_values(
      const std::string& channel) const;
  [[nodiscard]] std::vector<std::string> channels() const;

  /// Relation membership by event indices into events().
  [[nodiscard]] bool precedes(std::size_t i, std::size_t j) const {
    return precedent_.contains({i, j});
  }
  [[nodiscard]] bool concurrent(std::size_t i, std::size_t j) const {
    return concurrent_.contains({std::min(i, j), std::max(i, j)});
  }

  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Structure equality per Def 4.1: same events per channel (values, in
  /// order), same ≺, same ≈ — all keyed by (channel, occurrence).
  /// `why` (optional) receives a description of the first difference.
  [[nodiscard]] bool equivalent(const EventStructure& other,
                                std::string* why = nullptr) const;

  /// Builds the structure from a simulation trace. Uses the structural
  /// order relation ⇒ of the system's control net for ≺. The cached
  /// overload reuses order/concurrency from `cache` (bound to `system`)
  /// — the win when extracting structures for many traces of one system.
  static EventStructure extract(const dcf::System& system,
                                const sim::Trace& trace);
  static EventStructure extract(const dcf::System& system,
                                const sim::Trace& trace,
                                const AnalysisCache& cache);

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Event> events_;
  std::set<std::pair<std::size_t, std::size_t>> precedent_;
  std::set<std::pair<std::size_t, std::size_t>> concurrent_;
};

}  // namespace camad::semantics
