// Shared, memoized semantic analyses with an explicit invalidation
// protocol.
//
// Every transformation legality check in the repo consults the same few
// facts about a system: the reachability of its control net, the
// reachable place-concurrency relation (a full state-space exploration),
// the structural order F⁺ (Def 2.3), the data dependence relation
// (Defs 4.2-4.4), and — for register sharing — the definedness-aware
// liveness analysis. Before this module each consumer recomputed them
// ad hoc, so a design-space exploration step paid O(candidates)
// reachability explorations for one unchanged control net.
//
// An AnalysisCache binds to one dcf::System and computes each analysis
// lazily, at most once. Transformations declare, via PreservedAnalyses,
// which analyses of their *input* remain valid for their *output*
// (e.g. the Def 4.6 vertex merger rebuilds the control net verbatim, so
// every Petri-net analysis carries over); `successor()` transfers the
// declared-preserved results to a cache for the transformed system.
// Declarations are enforced empirically: tests/passes_test.cpp compares
// every carried analysis bit-for-bit against a fresh recompute.
//
// Thread-safety: all accessors are const and internally synchronized, so
// one primed cache may be read from parallel candidate-evaluation
// workers. Computation happens under the lock — prime hot analyses
// before fanning out if first-touch latency matters.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dcf/system.h"
#include "mc/checker.h"
#include "obs/trace.h"
#include "petri/order.h"
#include "petri/reachability.h"
#include "semantics/dependence.h"

namespace camad::semantics {

enum class Analysis : std::uint8_t {
  kReachability = 0,  ///< petri::explore over the control net
  kConcurrency,       ///< petri::concurrent_places (reachable co-marking)
  kOrder,             ///< petri::OrderRelations (structural F⁺)
  kDependence,        ///< DependenceRelation, keyed by clause options
  kLiveness,          ///< transform-layer register liveness (slot)
  kExactConcurrency,  ///< mc::model_check guard-aware state space
};
inline constexpr std::size_t kAnalysisCount = 6;

std::string_view analysis_name(Analysis analysis);

/// What a transformation keeps valid. Default-constructed = nothing.
class PreservedAnalyses {
 public:
  [[nodiscard]] static PreservedAnalyses none() { return {}; }
  [[nodiscard]] static PreservedAnalyses all();
  /// Everything derived from the control net alone: reachability,
  /// concurrency, structural order. The declaration of choice for
  /// data-path-only transformations (merge, regshare, split).
  [[nodiscard]] static PreservedAnalyses control_net();

  PreservedAnalyses& preserve(Analysis analysis);
  PreservedAnalyses& abandon(Analysis analysis);
  [[nodiscard]] bool preserved(Analysis analysis) const;
  [[nodiscard]] bool empty() const { return mask_ == 0; }

  /// Narrows to the analyses both declarations keep — the declaration of
  /// a *composed* transformation chain (a pipeline or a search path
  /// preserves exactly the intersection of its steps' declarations).
  PreservedAnalyses& intersect(const PreservedAnalyses& other) {
    mask_ &= other.mask_;
    return *this;
  }

  /// "reachability+concurrency+order" or "none".
  [[nodiscard]] std::string to_string() const;

 private:
  std::uint32_t mask_ = 0;
};

/// Per-analysis access counters. A *hit* found a computed (or carried)
/// result, a *miss* computed one, a *transfer* carried a result over
/// from a predecessor cache via successor().
struct AnalysisCacheStats {
  std::array<std::size_t, kAnalysisCount> hits{};
  std::array<std::size_t, kAnalysisCount> misses{};
  std::array<std::size_t, kAnalysisCount> transfers{};

  AnalysisCacheStats& operator+=(const AnalysisCacheStats& rhs);
  [[nodiscard]] std::size_t total_hits() const;
  [[nodiscard]] std::size_t total_misses() const;
  [[nodiscard]] std::size_t total_transfers() const;
  /// hits / (hits + misses), 0 when never accessed.
  [[nodiscard]] double hit_rate() const;
  /// Single-line totals — the CLI engine-summary form shared by every
  /// camadc subcommand. to_string() appends per-analysis breakdown lines.
  [[nodiscard]] std::string summary() const;
  [[nodiscard]] std::string to_string() const;
};

class AnalysisCache {
 public:
  /// `mc_options`, when given, replaces the default options of the
  /// guard-aware model_check() analysis (which otherwise mirror
  /// `reachability`'s max_markings / token_bound); it lets a CLI or
  /// service thread its --threads/--max-states/budget configuration
  /// through the cache while keeping every other analysis untouched.
  explicit AnalysisCache(
      const dcf::System& system,
      petri::ReachabilityOptions reachability = {},
      std::optional<mc::McOptions> mc_options = std::nullopt);

  AnalysisCache(const AnalysisCache&) = delete;
  AnalysisCache& operator=(const AnalysisCache&) = delete;
  AnalysisCache(AnalysisCache&&) = default;
  AnalysisCache& operator=(AnalysisCache&&) = default;

  [[nodiscard]] const dcf::System& system() const { return *system_; }
  /// True iff this cache was built for exactly this System object.
  [[nodiscard]] bool bound_to(const dcf::System& system) const {
    return system_ == &system;
  }
  [[nodiscard]] const petri::ReachabilityOptions& reachability_options()
      const {
    return reach_;
  }

  /// Full reachability exploration of the control net.
  const petri::ReachabilityResult& reachability() const;
  /// Reachable co-marking relation (row-major |S|×|S|, diagonal false).
  const std::vector<bool>& concurrency() const;
  [[nodiscard]] bool co_marked(petri::PlaceId a, petri::PlaceId b) const;
  /// Structural order relations (Def 2.3).
  const petri::OrderRelations& order() const;
  /// Dependence relation for the given clause selection (memoized per
  /// distinct selection).
  const DependenceRelation& dependence(
      const DependenceOptions& options = {}) const;
  /// Guard-aware model-check of the control net (mc::model_check with
  /// max_states / token_bound mirroring this cache's ReachabilityOptions).
  /// Never throws on a budget cutoff — check `.complete`.
  const mc::McResult& model_check() const;
  /// The exact (guard-aware reachable) place-concurrency relation, a
  /// subset of concurrency(). Partial when model_check().complete is
  /// false — callers making legality decisions must check completeness.
  const std::vector<bool>& exact_concurrency() const;

  /// Extension slot for analyses defined in higher layers (transform's
  /// liveness): computes T at most once under `kind`, via `compute`,
  /// which receives the bound system. One T per kind, by convention.
  /// `compute` runs under the cache's (non-recursive) lock and must not
  /// call back into this cache.
  template <typename T, typename Fn>
  const T& slot(Analysis kind, Fn&& compute) const {
    const std::lock_guard<std::mutex> lock(*mu_);
    std::shared_ptr<const void>& entry = slots_[index(kind)];
    if (entry == nullptr) {
      ++stats_.misses[index(kind)];
      const obs::ObsSpan span("analysis.", analysis_name(kind));
      entry = std::make_shared<const T>(compute(*system_));
    } else {
      ++stats_.hits[index(kind)];
    }
    return *static_cast<const T*>(entry.get());
  }

  /// Cache for the system a transformation produced: analyses the
  /// transformation declared preserved carry over (cheap shared_ptr
  /// copies). Control-net-shape guard: if `next`'s net differs in place
  /// or transition count from the bound system's, Petri-net analyses are
  /// dropped regardless of the declaration (an unsound declaration must
  /// not turn into out-of-bounds indexing).
  [[nodiscard]] AnalysisCache successor(
      const dcf::System& next, const PreservedAnalyses& preserved) const;

  /// Forces the control-net analyses (order + concurrency) so parallel
  /// readers never contend on first touch.
  void warm_control() const;

  [[nodiscard]] AnalysisCacheStats stats() const;

 private:
  static std::size_t index(Analysis a) {
    return static_cast<std::size_t>(a);
  }

  const dcf::System* system_;
  petri::ReachabilityOptions reach_;
  std::optional<mc::McOptions> mc_options_;
  std::size_t nplaces_ = 0;
  std::size_t ntransitions_ = 0;

  mutable std::unique_ptr<std::mutex> mu_;
  mutable std::shared_ptr<const petri::ReachabilityResult> reachability_;
  mutable std::shared_ptr<const std::vector<bool>> concurrency_;
  mutable std::shared_ptr<const mc::McResult> exact_;
  mutable std::shared_ptr<const petri::OrderRelations> order_;
  mutable std::map<std::uint8_t,
                   std::shared_ptr<const DependenceRelation>>
      dependence_;
  mutable std::array<std::shared_ptr<const void>, kAnalysisCount> slots_{};
  mutable AnalysisCacheStats stats_;
};

}  // namespace camad::semantics
