// Equivalence checkers — Defs 4.1 and 4.5 plus the simulation oracle.
//
// Def 4.1 equivalence (equal external event structures over all
// environments) is undecidable in general — the paper says so and
// introduces the decidable *data-invariant* relation (Def 4.5) as the
// sufficient condition its synthesis transformations maintain. We
// implement:
//   * check_data_invariant — the exact Def 4.5 test between two systems
//     sharing a data path (states matched by name);
//   * differential_equivalence — the falsification oracle: simulate both
//     systems under N identical random environments and compare external
//     event structures; can refute equivalence, never fully prove it.
#pragma once

#include <cstdint>
#include <string>

#include "dcf/system.h"
#include "semantics/dependence.h"
#include "semantics/events.h"
#include "sim/simulator.h"

namespace camad::semantics {

struct EquivalenceVerdict {
  bool holds = true;
  std::string why;  ///< first difference when !holds
};

/// Structural identity of two data paths (same vertices/kinds/names, same
/// ports/ops in order, same arcs). Def 4.5 presupposes D, C, G, M0 equal.
bool datapaths_identical(const dcf::DataPath& a, const dcf::DataPath& b);

struct DataInvariantOptions {
  DependenceOptions dependence;
  /// Use the literal Def 4.4 closure ◇ instead of direct dependence ↔.
  bool strict_transitive = false;
};

/// Def 4.5: for every pair of dependent states, sequential order in one
/// system iff the same sequential order in the other. States are matched
/// by name; both systems must carry identically named state sets over an
/// identical data path, with equal C mappings per state.
EquivalenceVerdict check_data_invariant(
    const dcf::System& gamma, const dcf::System& gamma_prime,
    const DataInvariantOptions& options = {});

struct DifferentialOptions {
  std::size_t environments = 8;
  std::uint64_t seed = 42;
  std::size_t stream_length = 64;
  std::int64_t value_lo = 0;
  std::int64_t value_hi = 99;
  sim::SimOptions sim;
};

/// Runs both systems under the same random environments and compares the
/// extracted external event structures (Def 4.1 applied to sampled
/// behaviours). A failure is a genuine counterexample; success is
/// evidence, not proof.
EquivalenceVerdict differential_equivalence(
    const dcf::System& gamma, const dcf::System& gamma_prime,
    const DifferentialOptions& options = {});

}  // namespace camad::semantics
