#include "semantics/events.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

#include "petri/order.h"
#include "petri/reachability.h"
#include "semantics/analysis.h"
#include "util/error.h"

namespace camad::semantics {

std::vector<dcf::Value> EventStructure::channel_values(
    const std::string& channel) const {
  std::vector<dcf::Value> out;
  for (const Event& e : events_) {
    if (e.channel == channel) out.push_back(e.value);
  }
  return out;
}

std::vector<std::string> EventStructure::channels() const {
  std::vector<std::string> out;
  for (const Event& e : events_) {
    if (std::find(out.begin(), out.end(), e.channel) == out.end()) {
      out.push_back(e.channel);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

EventStructure EventStructure::extract(const dcf::System& system,
                                       const sim::Trace& trace) {
  const AnalysisCache cache(system);
  return extract(system, trace, cache);
}

EventStructure EventStructure::extract(const dcf::System& system,
                                       const sim::Trace& trace,
                                       const AnalysisCache& cache) {
  if (!cache.bound_to(system)) {
    throw Error(
        "EventStructure::extract: analysis cache bound to a different "
        "system");
  }
  EventStructure s;
  const dcf::DataPath& dp = system.datapath();
  std::unordered_map<std::string, std::size_t> occurrence;

  for (const sim::ExternalEvent& raw : trace.events()) {
    const dcf::VertexId src = dp.arc_source_vertex(raw.arc);
    const dcf::VertexId dst = dp.arc_target_vertex(raw.arc);
    const dcf::VertexId ext =
        dp.kind(src) != dcf::VertexKind::kInternal ? src : dst;
    const std::string channel = dp.name(ext);
    s.events_.push_back(Event{channel, occurrence[channel]++, raw.value,
                              raw.cycle, raw.state});
  }

  // ⇒ refined by reachability: the structural F⁺ is cycle-blind — a
  // loop's back edge relates concurrent branch states of the body both
  // ways — so events of co-markable states would pick up a ≺ pair from
  // accidental cycle timing. Such events are in the paper's "casual"
  // relation: free to occur in either order, no constraint.
  const petri::OrderRelations& order = cache.order();
  auto causal = [&](petri::PlaceId a, petri::PlaceId b) {
    return order.before(a, b) && !cache.co_marked(a, b);
  };
  for (std::size_t i = 0; i < s.events_.size(); ++i) {
    for (std::size_t j = i + 1; j < s.events_.size(); ++j) {
      const Event& a = s.events_[i];
      const Event& b = s.events_[j];
      if (a.cycle < b.cycle && causal(a.state, b.state)) {
        s.precedent_.insert({i, j});
      } else if (b.cycle < a.cycle && causal(b.state, a.state)) {
        s.precedent_.insert({j, i});
      }
      if (a.cycle == b.cycle && a.state == b.state) {
        s.concurrent_.insert({i, j});
      }
    }
  }
  return s;
}

namespace {

using Key = std::pair<std::string, std::size_t>;  // (channel, occurrence)

std::set<std::pair<Key, Key>> keyed_relation(
    const std::vector<Event>& events,
    const std::set<std::pair<std::size_t, std::size_t>>& relation) {
  std::set<std::pair<Key, Key>> out;
  for (const auto& [i, j] : relation) {
    out.insert({{events[i].channel, events[i].occurrence},
                {events[j].channel, events[j].occurrence}});
  }
  return out;
}

}  // namespace

bool EventStructure::equivalent(const EventStructure& other,
                                std::string* why) const {
  auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };

  const auto mine = channels();
  const auto theirs = other.channels();
  if (mine != theirs) return fail("channel sets differ");

  for (const std::string& channel : mine) {
    const auto a = channel_values(channel);
    const auto b = other.channel_values(channel);
    if (a.size() != b.size()) {
      return fail("channel '" + channel + "' event counts differ: " +
                  std::to_string(a.size()) + " vs " + std::to_string(b.size()));
    }
    for (std::size_t k = 0; k < a.size(); ++k) {
      if (a[k] != b[k]) {
        std::ostringstream os;
        os << "channel '" << channel << "' event " << k << " differs: " << a[k]
           << " vs " << b[k];
        return fail(os.str());
      }
    }
  }

  if (keyed_relation(events_, precedent_) !=
      keyed_relation(other.events_, other.precedent_)) {
    return fail("precedent relations differ");
  }
  if (keyed_relation(events_, concurrent_) !=
      keyed_relation(other.events_, other.concurrent_)) {
    return fail("concurrent relations differ");
  }
  return true;
}

std::string EventStructure::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    os << i << ": " << e.channel << '[' << e.occurrence << "]=" << e.value
       << " @" << e.cycle << '\n';
  }
  os << "precedent pairs: " << precedent_.size()
     << ", concurrent pairs: " << concurrent_.size() << '\n';
  return os.str();
}

}  // namespace camad::semantics
