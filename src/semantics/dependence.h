// The data dependence relation — Defs 4.2-4.4.
//
// Direct dependence S_i ↔ S_j holds when (Def 4.3):
//   (a) R(S_i) ∩ dom(S_j) ≠ ∅          (write -> read)
//   (b) R(S_j) ∩ dom(S_i) ≠ ∅          (read -> write)
//   (c) R(S_i) ∩ R(S_j) ≠ ∅            (write -> write)
//   (d) control dependence: a transition adjacent to one state is guarded
//       by a port whose sequential support intersects the other's result
//       set
//   (e) both states control external arcs (environment order must hold)
//
// Def 4.4 takes the transitive closure ◇ = ↔⁺. Because ↔ is symmetric,
// the literal closure is the connected-component relation, which would
// freeze the relative order of *every* pair inside one dataflow component
// and nullify the parallelization the paper's Section 5 is about (e.g.
// two independent multiplications feeding one adder would become mutually
// dependent through the adder's state). CAMAD-style synthesis therefore
// uses the *direct* relation pairwise; this class exposes both, and the
// equivalence checker / transformations take the direct reading by
// default with `strict_transitive` restoring the literal Def 4.4 (ablated
// in E1).
#pragma once

#include <vector>

#include "dcf/system.h"
#include "util/bitset.h"

namespace camad::semantics {

struct DependenceOptions {
  bool clause_a = true;
  bool clause_b = true;
  bool clause_c = true;
  bool clause_d = true;
  bool clause_e = true;
};

class DependenceRelation {
 public:
  explicit DependenceRelation(const dcf::System& system,
                              const DependenceOptions& options = {});

  /// Direct dependence ↔ (symmetric).
  [[nodiscard]] bool direct(petri::PlaceId i, petri::PlaceId j) const {
    return direct_[i.index()].test(j.index());
  }
  /// Literal Def 4.4 closure ◇ (connected components of ↔).
  [[nodiscard]] bool transitive(petri::PlaceId i, petri::PlaceId j) const {
    return i != j && component_[i.index()] == component_[j.index()];
  }

  [[nodiscard]] std::size_t state_count() const { return direct_.size(); }

  /// Identical direct relation and components (used by the analysis-cache
  /// soundness tests).
  friend bool operator==(const DependenceRelation&,
                         const DependenceRelation&) = default;

 private:
  /// Sequential vertices (registers / environment) a port combinationally
  /// depends on, traced backwards through every arc.
  static std::vector<DynamicBitset> sequential_support(
      const dcf::System& system);

  std::vector<DynamicBitset> direct_;     // state -> states, symmetric
  std::vector<std::size_t> component_;    // union-find result per state
};

}  // namespace camad::semantics
