#include "semantics/equivalence.h"

#include <algorithm>
#include <map>

#include "petri/order.h"
#include "semantics/analysis.h"
#include "sim/batch.h"

namespace camad::semantics {
namespace {

using dcf::ArcId;
using dcf::PortId;
using dcf::VertexId;
using petri::PlaceId;

}  // namespace

bool datapaths_identical(const dcf::DataPath& a, const dcf::DataPath& b) {
  if (a.vertex_count() != b.vertex_count() ||
      a.port_count() != b.port_count() || a.arc_count() != b.arc_count()) {
    return false;
  }
  for (std::size_t i = 0; i < a.vertex_count(); ++i) {
    const VertexId v(static_cast<VertexId::underlying_type>(i));
    if (a.name(v) != b.name(v) || a.kind(v) != b.kind(v) ||
        a.input_ports(v) != b.input_ports(v) ||
        a.output_ports(v) != b.output_ports(v)) {
      return false;
    }
    for (PortId o : a.output_ports(v)) {
      if (!(a.operation(o) == b.operation(o))) return false;
    }
  }
  for (std::size_t i = 0; i < a.arc_count(); ++i) {
    const ArcId arc(static_cast<ArcId::underlying_type>(i));
    if (a.arc_source(arc) != b.arc_source(arc) ||
        a.arc_target(arc) != b.arc_target(arc)) {
      return false;
    }
  }
  return true;
}

EquivalenceVerdict check_data_invariant(const dcf::System& gamma,
                                        const dcf::System& gamma_prime,
                                        const DataInvariantOptions& options) {
  EquivalenceVerdict verdict;
  auto fail = [&](const std::string& why) {
    verdict.holds = false;
    verdict.why = why;
    return verdict;
  };

  if (!datapaths_identical(gamma.datapath(), gamma_prime.datapath())) {
    return fail("data paths are not identical (Def 4.5 requires equal D)");
  }

  // Match states by name across the two systems. Control-only helper
  // states added by a transformation (empty C) need not match.
  const petri::Net& na = gamma.control().net();
  const petri::Net& nb = gamma_prime.control().net();
  std::map<std::string, PlaceId> by_name;
  for (PlaceId p : nb.places()) {
    if (by_name.contains(nb.name(p))) {
      return fail("duplicate state name '" + nb.name(p) + "' in " +
                  gamma_prime.name());
    }
    by_name[nb.name(p)] = p;
  }

  std::vector<std::pair<PlaceId, PlaceId>> matched;  // (in gamma, in prime)
  for (PlaceId p : na.places()) {
    const auto it = by_name.find(na.name(p));
    if (it == by_name.end()) {
      if (gamma.control().controlled_arcs(p).empty()) continue;
      return fail("state '" + na.name(p) + "' missing from " +
                  gamma_prime.name());
    }
    // C(S) must agree (Def 4.5 keeps the control mapping).
    auto ca = gamma.control().controlled_arcs(p);
    auto cb = gamma_prime.control().controlled_arcs(it->second);
    std::sort(ca.begin(), ca.end());
    std::sort(cb.begin(), cb.end());
    if (ca != cb) {
      return fail("C(" + na.name(p) + ") differs between systems");
    }
    matched.emplace_back(p, it->second);
  }

  const AnalysisCache cache_a(gamma);
  const AnalysisCache cache_b(gamma_prime);
  const DependenceRelation& dep_a = cache_a.dependence(options.dependence);
  const DependenceRelation& dep_b =
      cache_b.dependence(options.dependence);
  const petri::OrderRelations& order_a = cache_a.order();
  const petri::OrderRelations& order_b = cache_b.order();

  auto dependent_a = [&](PlaceId i, PlaceId j) {
    return options.strict_transitive ? dep_a.transitive(i, j)
                                     : dep_a.direct(i, j);
  };
  auto dependent_b = [&](PlaceId i, PlaceId j) {
    return options.strict_transitive ? dep_b.transitive(i, j)
                                     : dep_b.direct(i, j);
  };

  for (const auto& [ai, bi] : matched) {
    for (const auto& [aj, bj] : matched) {
      if (ai == aj) continue;
      // Def 4.5: S_i ⇒ S_j ∧ S_i ◇ S_j in Γ  ⟹  same in Γ'.
      if (order_a.before(ai, aj) && dependent_a(ai, aj)) {
        if (!order_b.before(bi, bj)) {
          return fail("dependent order " + na.name(ai) + " => " +
                      na.name(aj) + " lost in " + gamma_prime.name());
        }
        if (!dependent_b(bi, bj)) {
          return fail("dependence " + na.name(ai) + " <-> " + na.name(aj) +
                      " lost in " + gamma_prime.name());
        }
      }
      // ... and vice versa.
      if (order_b.before(bi, bj) && dependent_b(bi, bj)) {
        if (!order_a.before(ai, aj)) {
          return fail("dependent order " + nb.name(bi) + " => " +
                      nb.name(bj) + " holds only in " + gamma_prime.name());
        }
      }
    }
  }
  return verdict;
}

EquivalenceVerdict differential_equivalence(
    const dcf::System& gamma, const dcf::System& gamma_prime,
    const DifferentialOptions& options) {
  EquivalenceVerdict verdict;
  // The k environments are independent: batch each system's runs over the
  // worker pool (each worker reuses one Simulator, so configuration plans
  // compile once per worker, not once per seed).
  std::vector<sim::BatchRun> runs_a;
  std::vector<sim::BatchRun> runs_b;
  runs_a.reserve(options.environments);
  runs_b.reserve(options.environments);
  for (std::size_t k = 0; k < options.environments; ++k) {
    const std::uint64_t seed = options.seed + k;
    runs_a.push_back(
        {sim::Environment::random_for(gamma, seed, options.stream_length,
                                      options.value_lo, options.value_hi),
         options.sim});
    runs_b.push_back(
        {sim::Environment::random_for(gamma_prime, seed,
                                      options.stream_length,
                                      options.value_lo, options.value_hi),
         options.sim});
  }
  const std::vector<sim::SimResult> results_a =
      sim::simulate_batch(gamma, runs_a);
  const std::vector<sim::SimResult> results_b =
      sim::simulate_batch(gamma_prime, runs_b);

  // One cache per system: the order/concurrency extraction needs are
  // computed once, not once per environment.
  const AnalysisCache cache_a(gamma);
  const AnalysisCache cache_b(gamma_prime);
  for (std::size_t k = 0; k < options.environments; ++k) {
    const EventStructure sa =
        EventStructure::extract(gamma, results_a[k].trace, cache_a);
    const EventStructure sb =
        EventStructure::extract(gamma_prime, results_b[k].trace, cache_b);
    std::string why;
    if (!sa.equivalent(sb, &why)) {
      verdict.holds = false;
      verdict.why = "environment seed " +
                    std::to_string(options.seed + k) + ": " + why;
      return verdict;
    }
  }
  return verdict;
}

}  // namespace camad::semantics
