#include "semantics/dependence.h"

#include <algorithm>
#include <numeric>

namespace camad::semantics {
namespace {

using dcf::ArcId;
using dcf::PortId;
using dcf::VertexId;
using petri::PlaceId;
using petri::TransitionId;

DynamicBitset to_bitset(const std::vector<VertexId>& vertices,
                        std::size_t n) {
  DynamicBitset out(n);
  for (VertexId v : vertices) out.set(v.index());
  return out;
}

}  // namespace

std::vector<DynamicBitset> DependenceRelation::sequential_support(
    const dcf::System& system) {
  const dcf::DataPath& dp = system.datapath();
  const std::size_t ports = dp.port_count();
  const std::size_t verts = dp.vertex_count();

  // Iterate to fixpoint: support(output port of sequential vertex) =
  // {owner}; support(COM output) = union over its input ports; support
  // (input port) = union over sources of *all* incoming arcs
  // (conservative — activity is control-dependent).
  std::vector<DynamicBitset> support(ports, DynamicBitset(verts));
  bool changed = true;
  while (changed) {
    changed = false;
    for (VertexId v : dp.vertices()) {
      for (PortId o : dp.output_ports(v)) {
        DynamicBitset next(verts);
        if (dcf::op_is_sequential(dp.operation(o).code)) {
          next.set(v.index());
        } else {
          const int arity = dcf::op_arity(dp.operation(o).code);
          const auto& ins = dp.input_ports(v);
          for (int k = 0; k < arity; ++k) {
            const PortId in = ins[static_cast<std::size_t>(k)];
            for (ArcId a : dp.arcs_into(in)) {
              next |= support[dp.arc_source(a).index()];
            }
          }
        }
        if (!(next == support[o.index()])) {
          support[o.index()] = std::move(next);
          changed = true;
        }
      }
    }
  }
  return support;
}

DependenceRelation::DependenceRelation(const dcf::System& system,
                                       const DependenceOptions& options) {
  const std::size_t n = system.control().net().place_count();
  const std::size_t verts = system.datapath().vertex_count();
  const petri::Net& net = system.control().net();

  direct_.assign(n, DynamicBitset(n));

  std::vector<DynamicBitset> result(n), domain(n);
  std::vector<bool> external(n);
  for (PlaceId s : net.places()) {
    result[s.index()] = to_bitset(system.result_set(s), verts);
    domain[s.index()] = to_bitset(system.domain(s), verts);
    external[s.index()] = system.touches_environment(s);
  }

  // Clause (d) support: for each state, the union of sequential supports
  // of guard ports on adjacent transitions.
  std::vector<DynamicBitset> guard_support(n, DynamicBitset(verts));
  if (options.clause_d) {
    const auto port_support = sequential_support(system);
    for (TransitionId t : net.transitions()) {
      DynamicBitset s(verts);
      for (PortId g : system.control().guards(t)) {
        s |= port_support[g.index()];
      }
      if (s.none()) continue;
      for (PlaceId p : net.pre(t)) guard_support[p.index()] |= s;
      for (PlaceId p : net.post(t)) guard_support[p.index()] |= s;
    }
  }

  auto mark = [&](std::size_t i, std::size_t j) {
    direct_[i].set(j);
    direct_[j].set(i);
  };

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (options.clause_a && result[i].intersects(domain[j])) mark(i, j);
      else if (options.clause_b && result[j].intersects(domain[i])) mark(i, j);
      else if (options.clause_c && result[i].intersects(result[j]))
        mark(i, j);
      else if (options.clause_d && (guard_support[i].intersects(result[j]) ||
                                    guard_support[j].intersects(result[i])))
        mark(i, j);
      else if (options.clause_e && external[i] && external[j]) mark(i, j);
    }
  }

  // Connected components of ↔ for the literal ◇.
  component_.resize(n);
  std::iota(component_.begin(), component_.end(), 0);
  std::vector<std::size_t> stack;
  std::vector<bool> seen(n, false);
  for (std::size_t root = 0; root < n; ++root) {
    if (seen[root]) continue;
    stack.push_back(root);
    seen[root] = true;
    while (!stack.empty()) {
      const std::size_t v = stack.back();
      stack.pop_back();
      component_[v] = root;
      direct_[v].for_each([&](std::size_t u) {
        if (!seen[u]) {
          seen[u] = true;
          stack.push_back(u);
        }
      });
    }
  }
}

}  // namespace camad::semantics
