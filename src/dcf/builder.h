// Fluent construction helper for data/control flow systems.
//
// Wraps DataPath + ControlNet so tests and examples can express the
// paper's diagrams in a few lines:
//
//   SystemBuilder b;
//   auto x  = b.input("x");
//   auto r  = b.reg("r");
//   auto s1 = b.state("S1", /*initial=*/true);
//   b.connect(x, r, 0, {s1});          // arc x.o -> r.i, opened by S1
//   auto s2 = b.state("S2");
//   b.chain(s1, s2);                   // S1 -> T -> S2
//   System sys = b.build("demo");
#pragma once

#include <initializer_list>
#include <string>
#include <utility>

#include "dcf/system.h"

namespace camad::dcf {

class SystemBuilder {
 public:
  // --- data path ----------------------------------------------------------
  VertexId input(std::string name) { return dp_.add_input(std::move(name)); }
  VertexId output(std::string name) { return dp_.add_output(std::move(name)); }
  VertexId reg(std::string name) { return dp_.add_register(std::move(name)); }
  VertexId unit(std::string name, OpCode code) {
    return dp_.add_unit(std::move(name), code);
  }
  VertexId constant(std::string name, std::int64_t value) {
    return dp_.add_constant(std::move(name), value);
  }

  /// k-th output / input port of a vertex.
  [[nodiscard]] PortId out(VertexId v, std::size_t k = 0) const {
    return dp_.output_ports(v).at(k);
  }
  [[nodiscard]] PortId in(VertexId v, std::size_t k = 0) const {
    return dp_.input_ports(v).at(k);
  }

  /// Arc from `from`'s first output port to `to`'s k-th input port,
  /// controlled by each state in `states`.
  ArcId connect(VertexId from, VertexId to, std::size_t to_input = 0,
                std::initializer_list<petri::PlaceId> states = {}) {
    const ArcId a = dp_.add_arc(out(from), in(to, to_input));
    for (petri::PlaceId s : states) cn_.control(s, a);
    return a;
  }
  /// Port-level arc with control.
  ArcId arc(PortId from, PortId to,
            std::initializer_list<petri::PlaceId> states = {}) {
    const ArcId a = dp_.add_arc(from, to);
    for (petri::PlaceId s : states) cn_.control(s, a);
    return a;
  }
  /// Adds an existing arc to C(state).
  void control(petri::PlaceId state, ArcId a) { cn_.control(state, a); }

  // --- control net ---------------------------------------------------------
  petri::PlaceId state(std::string name = {}, bool initial = false) {
    const petri::PlaceId s = cn_.add_state(std::move(name));
    if (initial) cn_.net().set_initial_tokens(s, 1);
    return s;
  }
  petri::TransitionId transition(std::string name = {}) {
    return cn_.add_transition(std::move(name));
  }
  void flow(petri::PlaceId s, petri::TransitionId t) { cn_.net().connect(s, t); }
  void flow(petri::TransitionId t, petri::PlaceId s) { cn_.net().connect(t, s); }

  /// Creates a transition from `from` to `to` and returns it.
  petri::TransitionId chain(petri::PlaceId from, petri::PlaceId to,
                            std::string name = {}) {
    const petri::TransitionId t = cn_.add_transition(std::move(name));
    cn_.net().connect(from, t);
    cn_.net().connect(t, to);
    return t;
  }

  /// Guards `t` by the first output port of `v` (typically a register).
  void guard(petri::TransitionId t, VertexId v) {
    cn_.guard(t, out(v));
  }
  void guard(petri::TransitionId t, PortId port) { cn_.guard(t, port); }

  // --- access / finish ------------------------------------------------------
  [[nodiscard]] DataPath& datapath() { return dp_; }
  [[nodiscard]] ControlNet& controlnet() { return cn_; }

  /// Moves the parts into a validated System.
  System build(std::string name = "system") {
    System sys(std::move(dp_), std::move(cn_), std::move(name));
    sys.validate();
    return sys;
  }

 private:
  DataPath dp_;
  ControlNet cn_;
};

}  // namespace camad::dcf
