// The control part of Γ = (D, S, T, F, C, G, M0) — Def 2.2.
//
// A marked Petri net extended with:
//   C : S → 2^A  each control state opens a set of data-path arcs while
//                marked (its control signal);
//   G : O → 2^T  transitions guarded by data-path output ports; a guarded
//                transition may fire only when the OR of its guard port
//                values is TRUE (Def 3.1 rule 4).
// Stored inverted (place → arcs, transition → ports) for execution.
#pragma once

#include <vector>

#include "dcf/datapath.h"
#include "petri/net.h"

namespace camad::dcf {

class ControlNet {
 public:
  /// The underlying Petri net (S, T, F, M0).
  [[nodiscard]] petri::Net& net() { return net_; }
  [[nodiscard]] const petri::Net& net() const { return net_; }

  petri::PlaceId add_state(std::string name = {});
  petri::TransitionId add_transition(std::string name = {});

  /// Registers arc ∈ C(state). Duplicates are ignored.
  void control(petri::PlaceId state, ArcId arc);
  /// Registers transition ∈ G(port); `port` must be an output port.
  void guard(petri::TransitionId transition, PortId port);

  /// C(S): arcs controlled by the state.
  [[nodiscard]] const std::vector<ArcId>& controlled_arcs(
      petri::PlaceId state) const;
  /// Guard ports of a transition (empty = unguarded, always fireable).
  [[nodiscard]] const std::vector<PortId>& guards(
      petri::TransitionId transition) const;

  /// States controlling a given arc (inverse of C). Computed lazily is not
  /// worth it at our sizes; scans C.
  [[nodiscard]] std::vector<petri::PlaceId> controlling_states(ArcId arc) const;

  [[nodiscard]] std::size_t state_count() const { return net_.place_count(); }
  [[nodiscard]] std::size_t transition_count() const {
    return net_.transition_count();
  }

 private:
  void sync_sizes();

  petri::Net net_;
  std::vector<std::vector<ArcId>> control_;  // place index -> arcs
  std::vector<std::vector<PortId>> guards_;  // transition index -> ports
};

}  // namespace camad::dcf
