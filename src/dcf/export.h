// Graphviz export of complete systems: data path clustered per vertex,
// control net places/transitions, and dashed control edges S --> arc.
#pragma once

#include <string>

#include "dcf/system.h"

namespace camad::dcf {

/// DOT rendering of the data path alone.
std::string datapath_to_dot(const DataPath& dp);

/// DOT rendering of the whole Γ, control mapping included.
std::string system_to_dot(const System& system);

}  // namespace camad::dcf
