// Port values V(P): 64-bit integers extended with ⊥ (undefined).
//
// Def 3.1 rule 10 makes undefined values first-class: an input port whose
// pending arcs are all inactive is undefined, and combinatorial outputs
// over undefined inputs are undefined. Guards treat undefined as
// not-TRUE, sequential latches ignore undefined (":= takes the last
// *defined* value", rule 9).
#pragma once

#include <cstdint>
#include <ostream>

namespace camad::dcf {

class Value {
 public:
  /// Undefined (⊥).
  constexpr Value() = default;
  constexpr Value(std::int64_t v) : defined_(true), value_(v) {}  // NOLINT

  [[nodiscard]] constexpr bool defined() const { return defined_; }
  /// Raw integer; only meaningful when defined().
  [[nodiscard]] constexpr std::int64_t raw() const { return value_; }

  /// TRUE test for guards: defined and nonzero.
  [[nodiscard]] constexpr bool truthy() const {
    return defined_ && value_ != 0;
  }

  static constexpr Value undef() { return Value(); }

  friend constexpr bool operator==(Value, Value) = default;

 private:
  bool defined_ = false;
  std::int64_t value_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, Value v) {
  if (!v.defined()) return os << "⊥";
  return os << v.raw();
}

}  // namespace camad::dcf
