#include "dcf/ops.h"

#include <array>
#include <limits>

#include "util/error.h"

namespace camad::dcf {
namespace {

struct OpInfo {
  OpCode code;
  std::string_view name;
  int arity;
  bool sequential;
  bool predicate;
};

constexpr std::array kOps = {
    OpInfo{OpCode::kAdd, "add", 2, false, false},
    OpInfo{OpCode::kSub, "sub", 2, false, false},
    OpInfo{OpCode::kMul, "mul", 2, false, false},
    OpInfo{OpCode::kDiv, "div", 2, false, false},
    OpInfo{OpCode::kMod, "mod", 2, false, false},
    OpInfo{OpCode::kNeg, "neg", 1, false, false},
    OpInfo{OpCode::kAnd, "and", 2, false, false},
    OpInfo{OpCode::kOr, "or", 2, false, false},
    OpInfo{OpCode::kXor, "xor", 2, false, false},
    OpInfo{OpCode::kNot, "not", 1, false, true},
    OpInfo{OpCode::kShl, "shl", 2, false, false},
    OpInfo{OpCode::kShr, "shr", 2, false, false},
    OpInfo{OpCode::kEq, "eq", 2, false, true},
    OpInfo{OpCode::kNe, "ne", 2, false, true},
    OpInfo{OpCode::kLt, "lt", 2, false, true},
    OpInfo{OpCode::kLe, "le", 2, false, true},
    OpInfo{OpCode::kGt, "gt", 2, false, true},
    OpInfo{OpCode::kGe, "ge", 2, false, true},
    OpInfo{OpCode::kMux, "mux", 3, false, false},
    OpInfo{OpCode::kPass, "pass", 1, false, false},
    OpInfo{OpCode::kConst, "const", 0, false, false},
    OpInfo{OpCode::kReg, "reg", 1, true, false},
    OpInfo{OpCode::kInput, "input", 0, true, false},
};

const OpInfo& info(OpCode code) {
  for (const OpInfo& op : kOps) {
    if (op.code == code) return op;
  }
  throw ModelError("unknown OpCode");
}

}  // namespace

int op_arity(OpCode code) { return info(code).arity; }
bool op_is_sequential(OpCode code) { return info(code).sequential; }
bool op_is_predicate(OpCode code) { return info(code).predicate; }
std::string_view op_name(OpCode code) { return info(code).name; }

OpCode op_from_name(std::string_view name) {
  for (const OpInfo& op : kOps) {
    if (op.name == name) return op.code;
  }
  throw ModelError("op_from_name: unknown operation '" + std::string(name) +
                   "'");
}

Value evaluate_op(const Operation& op, std::span<const Value> inputs) {
  if (op.code == OpCode::kReg || op.code == OpCode::kInput) {
    throw ModelError("evaluate_op: " + std::string(op_name(op.code)) +
                     " has no combinational evaluation");
  }
  if (static_cast<int>(inputs.size()) != op_arity(op.code)) {
    throw ModelError("evaluate_op: arity mismatch for " +
                     std::string(op_name(op.code)));
  }
  if (op.code == OpCode::kConst) return Value(op.immediate);

  for (const Value& v : inputs) {
    if (!v.defined()) return Value::undef();
  }
  // Unsigned arithmetic for well-defined wrap-around, like hardware.
  auto u = [&](int i) { return static_cast<std::uint64_t>(inputs[i].raw()); };
  auto s = [&](int i) { return inputs[i].raw(); };
  auto wrap = [](std::uint64_t v) {
    return Value(static_cast<std::int64_t>(v));
  };

  switch (op.code) {
    case OpCode::kAdd: return wrap(u(0) + u(1));
    case OpCode::kSub: return wrap(u(0) - u(1));
    case OpCode::kMul: return wrap(u(0) * u(1));
    case OpCode::kDiv:
      if (s(1) == 0) return Value::undef();
      if (s(0) == std::numeric_limits<std::int64_t>::min() && s(1) == -1) {
        return Value(std::numeric_limits<std::int64_t>::min());
      }
      return Value(s(0) / s(1));
    case OpCode::kMod:
      if (s(1) == 0) return Value::undef();
      if (s(0) == std::numeric_limits<std::int64_t>::min() && s(1) == -1) {
        return Value(0);
      }
      return Value(s(0) % s(1));
    case OpCode::kNeg: return wrap(~u(0) + 1);
    case OpCode::kAnd: return wrap(u(0) & u(1));
    case OpCode::kOr: return wrap(u(0) | u(1));
    case OpCode::kXor: return wrap(u(0) ^ u(1));
    case OpCode::kNot: return Value(inputs[0].truthy() ? 0 : 1);
    case OpCode::kShl:
      if (s(1) < 0 || s(1) >= 64) return Value::undef();
      return wrap(u(0) << s(1));
    case OpCode::kShr:
      if (s(1) < 0 || s(1) >= 64) return Value::undef();
      return wrap(u(0) >> s(1));
    case OpCode::kEq: return Value(s(0) == s(1) ? 1 : 0);
    case OpCode::kNe: return Value(s(0) != s(1) ? 1 : 0);
    case OpCode::kLt: return Value(s(0) < s(1) ? 1 : 0);
    case OpCode::kLe: return Value(s(0) <= s(1) ? 1 : 0);
    case OpCode::kGt: return Value(s(0) > s(1) ? 1 : 0);
    case OpCode::kGe: return Value(s(0) >= s(1) ? 1 : 0);
    case OpCode::kMux: return inputs[0].truthy() ? inputs[1] : inputs[2];
    case OpCode::kPass: return inputs[0];
    case OpCode::kConst:
    case OpCode::kReg:
    case OpCode::kInput: break;  // handled above
  }
  throw ModelError("evaluate_op: unreachable");
}

}  // namespace camad::dcf
