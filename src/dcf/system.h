// The complete data/control flow system Γ = (D, S, T, F, C, G, M0).
//
// Combines a DataPath with a ControlNet and exposes the derived sets the
// paper's definitions and transformations are phrased in:
//   * ASS(S)  — arcs in C(S) plus vertices associated via their input
//               ports (Defs 2.4/2.5);
//   * dom(S)  — vertices with an output port on a controlled arc;
//   * cod(S)  — vertices with an input port on a controlled arc;
//   * R(S)    — sequential subset of cod(S), the state's result set
//               (Def 4.2).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dcf/control.h"
#include "dcf/datapath.h"

namespace camad::dcf {

class System {
 public:
  System() = default;
  System(DataPath datapath, ControlNet control, std::string name = "system");

  [[nodiscard]] const DataPath& datapath() const { return datapath_; }
  [[nodiscard]] DataPath& datapath() { return datapath_; }
  [[nodiscard]] const ControlNet& control() const { return control_; }
  [[nodiscard]] ControlNet& control() { return control_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Vertices associated with a control state (Def 2.4): those with an
  /// input port hit by a controlled arc. Output-side vertices are *not*
  /// associated — fanout from one output port never conflicts.
  [[nodiscard]] std::vector<VertexId> associated_vertices(
      petri::PlaceId state) const;

  /// dom(S): vertices whose output port feeds an arc in C(S).
  [[nodiscard]] std::vector<VertexId> domain(petri::PlaceId state) const;
  /// cod(S): vertices whose input port is fed by an arc in C(S).
  [[nodiscard]] std::vector<VertexId> codomain(petri::PlaceId state) const;
  /// R(S): sequential vertices in cod(S).
  [[nodiscard]] std::vector<VertexId> result_set(petri::PlaceId state) const;

  /// True iff C(S) contains an external arc (used by Def 4.3 clause e).
  [[nodiscard]] bool touches_environment(petri::PlaceId state) const;

  /// Cross-structure referential integrity: C maps into real arcs, G into
  /// real output ports, and the data path itself validates. Throws.
  void validate() const;

 private:
  std::string name_ = "system";
  DataPath datapath_;
  ControlNet control_;
};

}  // namespace camad::dcf
