// The data path D = (V, I, O, A, B) of Def 2.1.
//
// Vertices model data-manipulation units (registers, operators, channels,
// environment boundaries); ports abstract their I/O behaviour; arcs are
// unit-to-unit connections; B binds every output port to an operation over
// the owning vertex's input ports (in declaration order).
//
// External vertices (Def 3.3): kInput vertices have exactly one output
// port and no inputs (the environment drives them); kOutput vertices have
// exactly one input port and no outputs (the environment observes them).
// Arcs touching external ports are *external arcs* — the carriers of the
// observable events that define the system's semantics.
#pragma once

#include <string>
#include <vector>

#include "dcf/ops.h"
#include "util/ids.h"

namespace camad::dcf {

struct VertexTag;
struct PortTag;
struct ArcTag;
using VertexId = StrongId<VertexTag>;
using PortId = StrongId<PortTag>;
using ArcId = StrongId<ArcTag>;

enum class VertexKind : std::uint8_t {
  kInternal,  ///< ordinary data-manipulation unit
  kInput,     ///< environment source (single output port)
  kOutput,    ///< environment sink (single input port)
};

enum class PortDir : std::uint8_t { kIn, kOut };

class DataPath {
 public:
  // --- construction -------------------------------------------------------
  VertexId add_vertex(std::string name,
                      VertexKind kind = VertexKind::kInternal);
  PortId add_input_port(VertexId v, std::string name = {});
  PortId add_output_port(VertexId v, Operation op, std::string name = {});
  /// Connects an output port to an input port (may belong to one vertex).
  ArcId add_arc(PortId from_output, PortId to_input);

  // Convenience factories for the common unit shapes.
  /// Environment source: kInput vertex with one kInput-op output port.
  VertexId add_input(std::string name);
  /// Environment sink: kOutput vertex with one input port.
  VertexId add_output(std::string name);
  /// Register: one input, one sequential output (kReg).
  VertexId add_register(std::string name);
  /// Combinatorial unit with op_arity(code) inputs and one output.
  VertexId add_unit(std::string name, OpCode code);
  /// Constant source: no inputs, one kConst output.
  VertexId add_constant(std::string name, std::int64_t value);

  // --- structure queries ---------------------------------------------------
  [[nodiscard]] std::size_t vertex_count() const { return vertices_.size(); }
  [[nodiscard]] std::size_t port_count() const { return ports_.size(); }
  [[nodiscard]] std::size_t arc_count() const { return arcs_.size(); }

  [[nodiscard]] const std::string& name(VertexId v) const {
    return vertices_[v.index()].name;
  }
  [[nodiscard]] const std::string& name(PortId p) const {
    return ports_[p.index()].name;
  }
  [[nodiscard]] VertexKind kind(VertexId v) const {
    return vertices_[v.index()].kind;
  }
  [[nodiscard]] const std::vector<PortId>& input_ports(VertexId v) const {
    return vertices_[v.index()].inputs;
  }
  [[nodiscard]] const std::vector<PortId>& output_ports(VertexId v) const {
    return vertices_[v.index()].outputs;
  }

  [[nodiscard]] PortDir direction(PortId p) const {
    return ports_[p.index()].dir;
  }
  [[nodiscard]] VertexId owner(PortId p) const {
    return ports_[p.index()].owner;
  }
  /// Operation bound to an output port (B of Def 2.1).
  [[nodiscard]] const Operation& operation(PortId output) const;
  /// Arcs leaving an output port (fanout) / entering an input port.
  [[nodiscard]] const std::vector<ArcId>& arcs_from(PortId output) const {
    return ports_[output.index()].arcs;
  }
  [[nodiscard]] const std::vector<ArcId>& arcs_into(PortId input) const {
    return ports_[input.index()].arcs;
  }

  [[nodiscard]] PortId arc_source(ArcId a) const {
    return arcs_[a.index()].from;
  }
  [[nodiscard]] PortId arc_target(ArcId a) const { return arcs_[a.index()].to; }
  /// Vertex owning the arc's source / target port.
  [[nodiscard]] VertexId arc_source_vertex(ArcId a) const {
    return owner(arcs_[a.index()].from);
  }
  [[nodiscard]] VertexId arc_target_vertex(ArcId a) const {
    return owner(arcs_[a.index()].to);
  }

  /// A vertex is *sequential* if some output port's op is SEQ, or it is an
  /// environment vertex (an output sink latches into the environment, an
  /// input source holds the environment's value). Used by Def 3.2 rule 5.
  [[nodiscard]] bool is_sequential_vertex(VertexId v) const;

  /// Arc is external iff it touches an external vertex (Def 3.3).
  [[nodiscard]] bool is_external_arc(ArcId a) const;
  [[nodiscard]] std::vector<ArcId> external_arcs() const;

  /// Single output port of a kInput vertex / input port of a kOutput one.
  [[nodiscard]] PortId the_output_port(VertexId input_vertex) const;
  [[nodiscard]] PortId the_input_port(VertexId output_vertex) const;

  [[nodiscard]] std::vector<VertexId> vertices() const;
  [[nodiscard]] std::vector<ArcId> arcs() const;

  /// Vertex lookup by name; invalid id when absent (names need not be
  /// unique — first match wins; the builder keeps them unique).
  [[nodiscard]] VertexId find_vertex(std::string_view name) const;

  /// Structural sanity: every port attached, external vertex shapes, mux
  /// select arity, arc endpoint directions. Throws ModelError on violation.
  void validate() const;

 private:
  struct Vertex {
    std::string name;
    VertexKind kind;
    std::vector<PortId> inputs;
    std::vector<PortId> outputs;
  };
  struct Port {
    std::string name;
    PortDir dir;
    VertexId owner;
    Operation op;             // meaningful for output ports only
    std::vector<ArcId> arcs;  // fanout (out ports) or fan-in (in ports)
  };
  struct Arc {
    PortId from;
    PortId to;
  };

  std::vector<Vertex> vertices_;
  std::vector<Port> ports_;
  std::vector<Arc> arcs_;
};

}  // namespace camad::dcf
