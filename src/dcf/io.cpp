#include "dcf/io.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/error.h"
#include "util/strings.h"

namespace camad::dcf {
namespace {

const char* kind_name(VertexKind kind) {
  switch (kind) {
    case VertexKind::kInput: return "input";
    case VertexKind::kOutput: return "output";
    case VertexKind::kInternal: return "internal";
  }
  return "?";
}

VertexKind kind_from_name(const std::string& name, int line) {
  if (name == "input") return VertexKind::kInput;
  if (name == "output") return VertexKind::kOutput;
  if (name == "internal") return VertexKind::kInternal;
  throw ParseError("unknown vertex kind '" + name + "'", line, 1);
}

}  // namespace

std::string save_system(const System& system) {
  const DataPath& dp = system.datapath();
  const auto& net = system.control().net();
  std::ostringstream os;
  os << "camad-system v1\n";
  os << "name " << system.name() << '\n';

  for (VertexId v : dp.vertices()) {
    os << "vertex " << kind_name(dp.kind(v)) << ' ' << dp.name(v) << '\n';
  }
  // Ports in global id order so arc indices below line up on reload.
  for (std::size_t i = 0; i < dp.port_count(); ++i) {
    const PortId p(static_cast<PortId::underlying_type>(i));
    if (dp.direction(p) == PortDir::kIn) {
      os << "port in " << dp.owner(p).value() << ' ' << dp.name(p) << '\n';
    } else {
      const Operation& op = dp.operation(p);
      os << "port out " << dp.owner(p).value() << ' ' << dp.name(p) << ' '
         << op_name(op.code);
      if (op.code == OpCode::kConst) os << ' ' << op.immediate;
      os << '\n';
    }
  }
  for (ArcId a : dp.arcs()) {
    os << "arc " << dp.arc_source(a).value() << ' ' << dp.arc_target(a).value()
       << '\n';
  }
  for (petri::PlaceId s : net.places()) {
    os << "state " << net.name(s) << ' ' << net.initial_tokens(s) << '\n';
  }
  for (petri::TransitionId t : net.transitions()) {
    os << "trans " << net.name(t) << '\n';
  }
  // Weighted arcs are multiset entries in pre/post; collapse each pair to
  // one line with the weight appended (omitted when 1, the legacy form).
  const auto emit_flow = [&os](const char* dir, std::uint32_t a,
                               std::uint32_t b, std::uint32_t weight) {
    os << "flow " << dir << ' ' << a << ' ' << b;
    if (weight > 1) os << ' ' << weight;
    os << '\n';
  };
  for (petri::TransitionId t : net.transitions()) {
    std::vector<petri::PlaceId> seen;
    for (petri::PlaceId s : net.pre(t)) {
      if (std::find(seen.begin(), seen.end(), s) != seen.end()) continue;
      seen.push_back(s);
      emit_flow("st", s.value(), t.value(), net.arc_weight(s, t));
    }
    seen.clear();
    for (petri::PlaceId s : net.post(t)) {
      if (std::find(seen.begin(), seen.end(), s) != seen.end()) continue;
      seen.push_back(s);
      emit_flow("ts", t.value(), s.value(), net.arc_weight(t, s));
    }
  }
  for (petri::PlaceId s : net.places()) {
    for (ArcId a : system.control().controlled_arcs(s)) {
      os << "control " << s.value() << ' ' << a.value() << '\n';
    }
  }
  for (petri::TransitionId t : net.transitions()) {
    for (PortId g : system.control().guards(t)) {
      os << "guard " << t.value() << ' ' << g.value() << '\n';
    }
  }
  os << "end\n";
  return os.str();
}

System load_system(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  int line_no = 0;

  auto next_line = [&]() -> bool {
    while (std::getline(is, line)) {
      ++line_no;
      line = std::string(trim(line));
      if (!line.empty() && line[0] != '#') return true;
    }
    return false;
  };

  if (!next_line() || line != "camad-system v1") {
    throw ParseError("missing 'camad-system v1' header", line_no, 1);
  }

  DataPath dp;
  ControlNet cn;
  std::string system_name = "system";
  bool saw_end = false;

  // Port and arc ids must be assigned in file order; the builders do that
  // naturally, but vertex port lists depend on add order too, so ports are
  // recorded in global order in the file.
  while (next_line()) {
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    auto fail = [&](const std::string& why) -> ParseError {
      return ParseError(why + " in '" + line + "'", line_no, 1);
    };

    if (tag == "name") {
      ls >> system_name;
    } else if (tag == "vertex") {
      std::string kind, name;
      if (!(ls >> kind >> name)) throw fail("vertex needs kind and name");
      dp.add_vertex(name, kind_from_name(kind, line_no));
    } else if (tag == "port") {
      std::string dir, name;
      unsigned vertex = 0;
      if (!(ls >> dir >> vertex >> name)) throw fail("malformed port");
      if (vertex >= dp.vertex_count()) throw fail("port vertex out of range");
      if (dir == "in") {
        dp.add_input_port(VertexId(vertex), name);
      } else if (dir == "out") {
        std::string opname;
        if (!(ls >> opname)) throw fail("output port needs an op");
        Operation op{op_from_name(opname), 0};
        if (op.code == OpCode::kConst && !(ls >> op.immediate)) {
          throw fail("const port needs an immediate");
        }
        dp.add_output_port(VertexId(vertex), op, name);
      } else {
        throw fail("port direction must be in/out");
      }
    } else if (tag == "arc") {
      unsigned from = 0, to = 0;
      if (!(ls >> from >> to)) throw fail("malformed arc");
      if (from >= dp.port_count() || to >= dp.port_count()) {
        throw fail("arc port out of range");
      }
      dp.add_arc(PortId(from), PortId(to));
    } else if (tag == "state") {
      std::string name;
      unsigned tokens = 0;
      if (!(ls >> name >> tokens)) throw fail("malformed state");
      const petri::PlaceId s = cn.add_state(name);
      cn.net().set_initial_tokens(s, tokens);
    } else if (tag == "trans") {
      std::string name;
      if (!(ls >> name)) throw fail("malformed trans");
      cn.add_transition(name);
    } else if (tag == "flow") {
      std::string dir;
      unsigned a = 0, b = 0;
      if (!(ls >> dir >> a >> b)) throw fail("malformed flow");
      unsigned weight = 1;  // optional trailing field, legacy lines omit it
      if (!(ls >> weight)) {
        weight = 1;  // failed extraction zeroes the value; restore default
      } else if (weight == 0) {
        throw fail("flow weight must be positive");
      }
      if (dir == "st") {
        cn.net().connect(petri::PlaceId(a), petri::TransitionId(b), weight);
      } else if (dir == "ts") {
        cn.net().connect(petri::TransitionId(a), petri::PlaceId(b), weight);
      } else {
        throw fail("flow direction must be st/ts");
      }
    } else if (tag == "control") {
      unsigned s = 0, a = 0;
      if (!(ls >> s >> a)) throw fail("malformed control");
      cn.control(petri::PlaceId(s), ArcId(a));
    } else if (tag == "guard") {
      unsigned t = 0, p = 0;
      if (!(ls >> t >> p)) throw fail("malformed guard");
      cn.guard(petri::TransitionId(t), PortId(p));
    } else if (tag == "end") {
      saw_end = true;
      break;
    } else {
      throw fail("unknown directive '" + tag + "'");
    }
  }
  if (!saw_end) throw ParseError("missing 'end'", line_no, 1);

  System system(std::move(dp), std::move(cn), system_name);
  system.validate();
  return system;
}

}  // namespace camad::dcf
