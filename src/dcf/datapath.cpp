#include "dcf/datapath.h"

#include <algorithm>

#include "util/error.h"

namespace camad::dcf {

VertexId DataPath::add_vertex(std::string name, VertexKind kind) {
  const VertexId id(static_cast<VertexId::underlying_type>(vertices_.size()));
  vertices_.push_back(Vertex{std::move(name), kind, {}, {}});
  return id;
}

PortId DataPath::add_input_port(VertexId v, std::string name) {
  if (v.index() >= vertices_.size()) {
    throw ModelError("add_input_port: vertex out of range");
  }
  const PortId id(static_cast<PortId::underlying_type>(ports_.size()));
  Vertex& vertex = vertices_[v.index()];
  if (name.empty()) {
    name = vertex.name + ".i" + std::to_string(vertex.inputs.size());
  }
  ports_.push_back(Port{std::move(name), PortDir::kIn, v, Operation{}, {}});
  vertex.inputs.push_back(id);
  return id;
}

PortId DataPath::add_output_port(VertexId v, Operation op, std::string name) {
  if (v.index() >= vertices_.size()) {
    throw ModelError("add_output_port: vertex out of range");
  }
  const PortId id(static_cast<PortId::underlying_type>(ports_.size()));
  Vertex& vertex = vertices_[v.index()];
  if (name.empty()) {
    name = vertex.name + ".o" + std::to_string(vertex.outputs.size());
  }
  ports_.push_back(Port{std::move(name), PortDir::kOut, v, op, {}});
  vertex.outputs.push_back(id);
  return id;
}

ArcId DataPath::add_arc(PortId from_output, PortId to_input) {
  if (from_output.index() >= ports_.size() ||
      to_input.index() >= ports_.size()) {
    throw ModelError("add_arc: port out of range");
  }
  if (direction(from_output) != PortDir::kOut) {
    throw ModelError("add_arc: source " + name(from_output) +
                     " is not an output port");
  }
  if (direction(to_input) != PortDir::kIn) {
    throw ModelError("add_arc: target " + name(to_input) +
                     " is not an input port");
  }
  const ArcId id(static_cast<ArcId::underlying_type>(arcs_.size()));
  arcs_.push_back(Arc{from_output, to_input});
  ports_[from_output.index()].arcs.push_back(id);
  ports_[to_input.index()].arcs.push_back(id);
  return id;
}

VertexId DataPath::add_input(std::string name) {
  const VertexId v = add_vertex(std::move(name), VertexKind::kInput);
  add_output_port(v, Operation{OpCode::kInput, 0});
  return v;
}

VertexId DataPath::add_output(std::string name) {
  const VertexId v = add_vertex(std::move(name), VertexKind::kOutput);
  add_input_port(v);
  return v;
}

VertexId DataPath::add_register(std::string name) {
  const VertexId v = add_vertex(std::move(name));
  add_input_port(v);
  add_output_port(v, Operation{OpCode::kReg, 0});
  return v;
}

VertexId DataPath::add_unit(std::string name, OpCode code) {
  if (op_is_sequential(code) || code == OpCode::kConst) {
    throw ModelError("add_unit: use the dedicated factory for " +
                     std::string(op_name(code)));
  }
  const VertexId v = add_vertex(std::move(name));
  for (int i = 0; i < op_arity(code); ++i) add_input_port(v);
  add_output_port(v, Operation{code, 0});
  return v;
}

VertexId DataPath::add_constant(std::string name, std::int64_t value) {
  const VertexId v = add_vertex(std::move(name));
  add_output_port(v, Operation{OpCode::kConst, value});
  return v;
}

const Operation& DataPath::operation(PortId output) const {
  const Port& port = ports_[output.index()];
  if (port.dir != PortDir::kOut) {
    throw ModelError("operation: " + port.name + " is not an output port");
  }
  return port.op;
}

bool DataPath::is_sequential_vertex(VertexId v) const {
  const Vertex& vertex = vertices_[v.index()];
  if (vertex.kind != VertexKind::kInternal) return true;
  return std::any_of(vertex.outputs.begin(), vertex.outputs.end(),
                     [this](PortId o) {
                       return op_is_sequential(ports_[o.index()].op.code);
                     });
}

bool DataPath::is_external_arc(ArcId a) const {
  return kind(arc_source_vertex(a)) != VertexKind::kInternal ||
         kind(arc_target_vertex(a)) != VertexKind::kInternal;
}

std::vector<ArcId> DataPath::external_arcs() const {
  std::vector<ArcId> out;
  for (std::size_t i = 0; i < arcs_.size(); ++i) {
    const ArcId a(static_cast<ArcId::underlying_type>(i));
    if (is_external_arc(a)) out.push_back(a);
  }
  return out;
}

PortId DataPath::the_output_port(VertexId input_vertex) const {
  const Vertex& vertex = vertices_[input_vertex.index()];
  if (vertex.kind != VertexKind::kInput || vertex.outputs.size() != 1) {
    throw ModelError("the_output_port: " + vertex.name +
                     " is not an input vertex");
  }
  return vertex.outputs.front();
}

PortId DataPath::the_input_port(VertexId output_vertex) const {
  const Vertex& vertex = vertices_[output_vertex.index()];
  if (vertex.kind != VertexKind::kOutput || vertex.inputs.size() != 1) {
    throw ModelError("the_input_port: " + vertex.name +
                     " is not an output vertex");
  }
  return vertex.inputs.front();
}

std::vector<VertexId> DataPath::vertices() const {
  std::vector<VertexId> out;
  out.reserve(vertices_.size());
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    out.emplace_back(static_cast<VertexId::underlying_type>(i));
  }
  return out;
}

std::vector<ArcId> DataPath::arcs() const {
  std::vector<ArcId> out;
  out.reserve(arcs_.size());
  for (std::size_t i = 0; i < arcs_.size(); ++i) {
    out.emplace_back(static_cast<ArcId::underlying_type>(i));
  }
  return out;
}

VertexId DataPath::find_vertex(std::string_view name) const {
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    if (vertices_[i].name == name) {
      return VertexId(static_cast<VertexId::underlying_type>(i));
    }
  }
  return VertexId::invalid();
}

void DataPath::validate() const {
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const Vertex& v = vertices_[i];
    switch (v.kind) {
      case VertexKind::kInput:
        if (!v.inputs.empty() || v.outputs.size() != 1) {
          throw ModelError("validate: input vertex " + v.name +
                           " must have exactly one output port and none in");
        }
        if (ports_[v.outputs[0].index()].op.code != OpCode::kInput) {
          throw ModelError("validate: input vertex " + v.name +
                           " must carry the input op");
        }
        break;
      case VertexKind::kOutput:
        if (v.inputs.size() != 1 || !v.outputs.empty()) {
          throw ModelError("validate: output vertex " + v.name +
                           " must have exactly one input port and none out");
        }
        break;
      case VertexKind::kInternal:
        for (PortId o : v.outputs) {
          const Operation& op = ports_[o.index()].op;
          if (op.code == OpCode::kInput) {
            throw ModelError("validate: internal vertex " + v.name +
                             " carries the environment input op");
          }
          const int arity = op_arity(op.code);
          if (static_cast<int>(v.inputs.size()) < arity) {
            throw ModelError("validate: vertex " + v.name + " op " +
                             std::string(op_name(op.code)) + " needs " +
                             std::to_string(arity) + " input ports");
          }
        }
        break;
    }
  }
  for (const Arc& arc : arcs_) {
    if (ports_[arc.from.index()].dir != PortDir::kOut ||
        ports_[arc.to.index()].dir != PortDir::kIn) {
      throw ModelError("validate: arc with wrong port directions");
    }
  }
}

}  // namespace camad::dcf
