// The operation set OP = SEQ ∪ COM (Def 2.1) and its interpretation.
//
// The paper leaves the algebraic structure abstract; we fix the standard
// interpretation over 64-bit two's-complement integers, which is what the
// CAMAD module library assumed for datapath synthesis. Division/modulo by
// zero yield ⊥ rather than trapping.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "dcf/value.h"

namespace camad::dcf {

enum class OpCode : std::uint8_t {
  // Combinatorial (COM)
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kNeg,
  kAnd,
  kOr,
  kXor,
  kNot,
  kShl,
  kShr,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kMux,    // mux(sel, a, b) = sel ? a : b
  kPass,   // identity; models wires / channel vertices
  kConst,  // 0-ary, value from the immediate
  // Sequential (SEQ)
  kReg,    // register: output = latched state
  // Environment boundary
  kInput,  // 0-ary; value supplied by the environment stream
};

/// An operation instance: code plus immediate (used by kConst only).
struct Operation {
  OpCode code = OpCode::kPass;
  std::int64_t immediate = 0;

  friend bool operator==(const Operation&, const Operation&) = default;
};

/// Number of input ports the op consumes; kMux is 3, binary ops 2, etc.
int op_arity(OpCode code);

/// SEQ vs COM split of Def 2.1. kReg and kInput are sequential: their
/// output does not combinationally depend on present inputs.
bool op_is_sequential(OpCode code);

/// True for comparison ops whose result is 0/1 (usable as guards).
bool op_is_predicate(OpCode code);

std::string_view op_name(OpCode code);
/// Inverse of op_name; throws ModelError on unknown names.
OpCode op_from_name(std::string_view name);

/// Combinational evaluation: OP(V(I(V))) per Def 3.1 rule 9.
/// `inputs.size()` must equal op_arity. Any undefined input (or div/mod by
/// zero, or shift out of range) yields ⊥. Must not be called for kReg or
/// kInput, whose values come from latched state / the environment.
Value evaluate_op(const Operation& op, std::span<const Value> inputs);

}  // namespace camad::dcf
