#include "dcf/check.h"

#include <algorithm>
#include <memory>
#include <sstream>

#include "dcf/guardinfo.h"
#include "graph/algorithms.h"
#include "graph/digraph.h"
#include "mc/checker.h"
#include "petri/invariants.h"
#include "petri/order.h"
#include "semantics/analysis.h"
#include "util/error.h"

namespace camad::dcf {
namespace {

using petri::PlaceId;
using petri::TransitionId;

/// Human-readable arc rendering: "src_vertex.oK -> dst_vertex.iK". Arc
/// ids are rebuilt by every transformation, so diagnostics name the
/// endpoints instead.
std::string arc_label(const DataPath& dp, ArcId a) {
  return dp.name(dp.arc_source(a)) + " -> " + dp.name(dp.arc_target(a));
}

/// The ∥ relation rules 1 and 4 quantify over: structural (Def 2.3) by
/// default, reachability-refined when requested.
class ParallelRelation {
 public:
  /// `cache` (nullable) supplies memoized relations; it is consulted only
  /// when bound to the checked system with matching reachability options
  /// (the caller guarantees both — see usable_cache below). A
  /// reachability-refined relation that cannot be completed within the
  /// exploration budget is an under-approximation (unsound for rules 1
  /// and 4), so those paths degrade to the structural relation and leave
  /// a warning in `report` instead of throwing.
  ParallelRelation(const petri::Net& net, const CheckOptions& options,
                   const semantics::AnalysisCache* cache,
                   const mc::McResult* exact, CheckReport& report)
      : n_(net.place_count()) {
    if (exact != nullptr && !exact->concurrency.empty()) {
      conc_ = &exact->concurrency;
      return;
    }
    if (options.use_reachable_concurrency) {
      if (cache != nullptr) {
        if (cache->reachability().complete) {
          conc_ = &cache->concurrency();
          return;
        }
      } else {
        petri::ConcurrencyRelation rel =
            petri::concurrent_places_bounded(net, options.reachability);
        if (rel.exploration.complete) {
          own_conc_ = std::move(rel.concurrent);
          conc_ = &own_conc_;
          return;
        }
      }
      report.warnings.push_back(
          {Rule::kParallelDisjoint,
           "reachable-concurrency refinement exceeded the exploration "
           "budget; using the structural parallel relation instead"});
    }
    if (cache != nullptr) {
      order_ = &cache->order();
    } else {
      own_order_ = std::make_unique<petri::OrderRelations>(net);
      order_ = own_order_.get();
    }
  }

  [[nodiscard]] bool operator()(PlaceId a, PlaceId b) const {
    if (order_ != nullptr) return order_->parallel(a, b);
    return (*conc_)[a.index() * n_ + b.index()];
  }

 private:
  std::size_t n_;
  std::vector<bool> own_conc_;
  std::unique_ptr<petri::OrderRelations> own_order_;
  const std::vector<bool>* conc_ = nullptr;
  const petri::OrderRelations* order_ = nullptr;
};

void check_parallel_disjoint(const System& system,
                             const ParallelRelation& parallel,
                             CheckReport& report) {
  const auto& net = system.control().net();
  const std::size_t n = net.place_count();

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const PlaceId si(static_cast<PlaceId::underlying_type>(i));
      const PlaceId sj(static_cast<PlaceId::underlying_type>(j));
      if (!parallel(si, sj)) continue;

      // ASS = controlled arcs + associated (input-side) vertices.
      const auto& arcs_i = system.control().controlled_arcs(si);
      const auto& arcs_j = system.control().controlled_arcs(sj);
      for (ArcId a : arcs_i) {
        if (std::find(arcs_j.begin(), arcs_j.end(), a) != arcs_j.end()) {
          report.violations.push_back(
              {Rule::kParallelDisjoint,
               "states " + net.name(si) + " and " + net.name(sj) +
                   " are parallel but both control arc " +
                   arc_label(system.datapath(), a)});
        }
      }
      const auto verts_i = system.associated_vertices(si);
      const auto verts_j = system.associated_vertices(sj);
      for (VertexId v : verts_i) {
        if (std::find(verts_j.begin(), verts_j.end(), v) != verts_j.end()) {
          report.violations.push_back(
              {Rule::kParallelDisjoint,
               "states " + net.name(si) + " and " + net.name(sj) +
                   " are parallel but share vertex " +
                   system.datapath().name(v)});
        }
      }
    }
  }
}

void check_safety(const System& system, const CheckOptions& options,
                  const semantics::AnalysisCache* cache,
                  CheckReport& report) {
  const auto& net = system.control().net();
  // Initial marking itself must be safe.
  for (PlaceId p : net.places()) {
    if (net.initial_tokens(p) > 1) {
      report.violations.push_back(
          {Rule::kSafety, "initial marking puts " +
                              std::to_string(net.initial_tokens(p)) +
                              " tokens on " + net.name(p)});
      return;
    }
  }
  if (options.try_invariant_certificate) {
    try {
      if (petri::covered_by_safe_invariants(net)) return;  // certified safe
    } catch (const Error&) {
      // Farkas row explosion: fall through to reachability.
    }
  }
  const petri::ReachabilityResult result =
      cache != nullptr ? cache->reachability()
                       : petri::explore(net, options.reachability);
  if (!result.safe) {
    std::string marked;
    for (PlaceId p : result.unsafe_witness->marked_places()) {
      marked += " " + net.name(p) + "(" +
                std::to_string(result.unsafe_witness->tokens(p)) + ")";
    }
    report.violations.push_back(
        {Rule::kSafety, "net is unsafe; witness marking:" + marked});
  } else if (!result.complete) {
    report.violations.push_back(
        {Rule::kSafety,
         "state space exceeded exploration budget; safety not established"});
  }
}

/// Rule 2 against a *complete* guard-aware state space: the witness, if
/// any, is a marking actually reachable under guard semantics (the
/// unguarded explorer may report spurious witnesses pruned by guards).
void check_safety_exact(const System& system, const mc::McResult& exact,
                        CheckReport& report) {
  const auto& net = system.control().net();
  for (PlaceId p : net.places()) {
    if (net.initial_tokens(p) > 1) {
      report.violations.push_back(
          {Rule::kSafety, "initial marking puts " +
                              std::to_string(net.initial_tokens(p)) +
                              " tokens on " + net.name(p)});
      return;
    }
  }
  if (!exact.safe && exact.unsafe_witness.has_value()) {
    std::string marked;
    for (PlaceId p : exact.unsafe_witness->marked_places()) {
      marked += " " + net.name(p) + "(" +
                std::to_string(exact.unsafe_witness->tokens(p)) + ")";
    }
    report.violations.push_back(
        {Rule::kSafety,
         "net is unsafe under guard-aware exploration; witness marking:" +
             marked});
  }
}

/// Rule 3 per reachable marking: only competitor pairs that are jointly
/// token-enabled *and* guard-allowed in some reachable state are
/// reported. Statically unprovable pairs that never co-compete reachably
/// are silently fine — the refinement over check_conflict_free below.
void check_conflict_free_exact(const System& system,
                               const mc::McResult& exact,
                               CheckReport& report) {
  const auto& net = system.control().net();
  for (const mc::McConflict& c : exact.conflicts) {
    const std::string msg =
        "place " + net.name(c.place) + " has competing transitions " +
        net.name(c.a) + ", " + net.name(c.b) +
        " jointly enabled in a reachable marking";
    if (c.unguarded) {
      report.violations.push_back(
          {Rule::kConflictFree, msg + " and at least one is unguarded"});
    } else {
      report.warnings.push_back(
          {Rule::kConflictFree,
           msg + "; guards not statically provable exclusive — verify "
                 "dynamically"});
    }
  }
  if (exact.conflicts_truncated > 0) {
    report.warnings.push_back(
        {Rule::kConflictFree,
         std::to_string(exact.conflicts_truncated) +
             " further reachable conflict triple(s) beyond the reporting "
             "cap"});
  }
}

void check_conflict_free(const System& system, CheckReport& report) {
  const auto& net = system.control().net();
  for (PlaceId p : net.places()) {
    const auto& succs = net.post(p);
    if (succs.size() < 2) continue;
    for (std::size_t i = 0; i < succs.size(); ++i) {
      for (std::size_t j = i + 1; j < succs.size(); ++j) {
        const auto& gi = system.control().guards(succs[i]);
        const auto& gj = system.control().guards(succs[j]);
        if (gi.empty() || gj.empty()) {
          report.violations.push_back(
              {Rule::kConflictFree,
               "place " + net.name(p) + " has competing transitions " +
                   net.name(succs[i]) + ", " + net.name(succs[j]) +
                   " of which at least one is unguarded"});
          continue;
        }
        // Provable exclusivity: some guard of one complements some guard
        // of the other and each side is singly guarded.
        const bool provable = gi.size() == 1 && gj.size() == 1 &&
                              complementary_guard_ports(system, gi[0], gj[0]);
        if (!provable) {
          report.warnings.push_back(
              {Rule::kConflictFree,
               "guards of " + net.name(succs[i]) + " and " +
                   net.name(succs[j]) + " from place " + net.name(p) +
                   " not statically provable exclusive; verify dynamically"});
        }
      }
    }
  }
}

void check_no_comb_loop(const System& system,
                        const ParallelRelation& parallel,
                        CheckReport& report) {
  const DataPath& dp = system.datapath();
  const auto& net = system.control().net();

  // Internal in->out edges of COM operations, shared by every
  // configuration graph (registers break loops and contribute none).
  std::vector<std::pair<PortId, PortId>> com_edges;
  for (VertexId v : dp.vertices()) {
    for (PortId o : dp.output_ports(v)) {
      const Operation& op = dp.operation(o);
      if (op_is_sequential(op.code)) continue;
      const int arity = op_arity(op.code);
      const auto& ins = dp.input_ports(v);
      for (int k = 0; k < arity; ++k) {
        com_edges.emplace_back(ins[static_cast<std::size_t>(k)], o);
      }
    }
  }

  // Port-level digraph for one set of simultaneously active states:
  // controlled arcs connect out->in across vertices; COM operations
  // connect in->out inside one. Returns the name of a port on an active
  // cycle, or empty.
  auto active_loop_port =
      [&](std::initializer_list<PlaceId> states) -> std::string {
    graph::Digraph g(dp.port_count());
    std::vector<bool> port_active(dp.port_count(), false);
    for (PlaceId s : states) {
      for (ArcId a : system.control().controlled_arcs(s)) {
        g.add_edge(graph::NodeId(dp.arc_source(a).value()),
                   graph::NodeId(dp.arc_target(a).value()));
        port_active[dp.arc_source(a).index()] = true;
        port_active[dp.arc_target(a).index()] = true;
      }
    }
    for (const auto& [in, out] : com_edges) {
      g.add_edge(graph::NodeId(in.value()), graph::NodeId(out.value()));
    }
    // A loop is only *active* if it passes through a controlled arc;
    // internal in->out edges alone cannot form a cycle (ports are
    // distinct). Detect cycles among nodes touching active ports.
    if (!graph::has_cycle(g)) return {};
    const auto scc = graph::strongly_connected_components(g);
    std::vector<std::size_t> size(scc.count, 0);
    for (std::size_t node = 0; node < dp.port_count(); ++node) {
      ++size[scc.component[node]];
    }
    for (std::size_t node = 0; node < dp.port_count(); ++node) {
      if (size[scc.component[node]] > 1 && port_active[node]) {
        return dp.name(PortId(static_cast<PortId::underlying_type>(node)));
      }
    }
    return {};
  };

  const std::size_t n = net.place_count();
  std::vector<bool> loops_alone(n, false);
  for (PlaceId s : net.places()) {
    const std::string port = active_loop_port({s});
    if (!port.empty()) {
      loops_alone[s.index()] = true;
      report.violations.push_back(
          {Rule::kNoCombLoop, "state " + net.name(s) +
                                  " activates a combinatorial loop "
                                  "through port " +
                                  port});
    }
  }

  // A configuration is the union of all marked states' arc sets (Def
  // 3.2), so a loop may close only when parallel states are active
  // together. Pairs are an under-approximation of full configurations but
  // catch the split-loop case; skip pairs where a state is already
  // looping alone.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const PlaceId si(static_cast<PlaceId::underlying_type>(i));
      const PlaceId sj(static_cast<PlaceId::underlying_type>(j));
      if (!parallel(si, sj)) continue;
      if (loops_alone[i] || loops_alone[j]) continue;
      const std::string port = active_loop_port({si, sj});
      if (!port.empty()) {
        report.violations.push_back(
            {Rule::kNoCombLoop,
             "parallel states " + net.name(si) + " and " + net.name(sj) +
                 " jointly activate a combinatorial loop through port " +
                 port});
      }
    }
  }
}

void check_sequential_result(const System& system, const CheckOptions& options,
                             CheckReport& report) {
  const auto& net = system.control().net();
  for (PlaceId s : net.places()) {
    if (options.allow_control_only_states &&
        system.control().controlled_arcs(s).empty()) {
      continue;
    }
    if (system.result_set(s).empty()) {
      report.violations.push_back(
          {Rule::kSequentialResult,
           "ASS(" + net.name(s) + ") contains no sequential vertex" +
               (system.control().controlled_arcs(s).empty()
                    ? " (state controls no arcs)"
                    : "")});
    }
  }
}

}  // namespace

std::string_view rule_name(Rule rule) {
  switch (rule) {
    case Rule::kParallelDisjoint: return "parallel-disjoint";
    case Rule::kSafety: return "safety";
    case Rule::kConflictFree: return "conflict-free";
    case Rule::kNoCombLoop: return "no-comb-loop";
    case Rule::kSequentialResult: return "sequential-result";
  }
  return "?";
}

std::string CheckReport::to_string() const {
  std::ostringstream os;
  if (ok()) {
    os << "properly designed";
  } else {
    os << violations.size() << " violation(s):\n";
    for (const Violation& v : violations) {
      os << "  [" << rule_name(v.rule) << "] " << v.message << '\n';
    }
  }
  if (!warnings.empty()) {
    if (ok()) os << '\n';
    os << warnings.size() << " warning(s):\n";
    for (const Violation& v : warnings) {
      os << "  [" << rule_name(v.rule) << "] " << v.message << '\n';
    }
  }
  return os.str();
}

namespace {

CheckReport check_properly_designed_impl(
    const System& system, const CheckOptions& options,
    const semantics::AnalysisCache* cache) {
  system.validate();
  CheckReport report;
  const mc::McResult* exact = nullptr;
  mc::McResult own_exact;
  if (options.exact) {
    if (cache != nullptr) {
      exact = &cache->model_check();
    } else {
      mc::McOptions opt;
      opt.max_states = options.reachability.max_markings;
      opt.token_bound = options.reachability.token_bound;
      own_exact = mc::model_check(system, opt);
      exact = &own_exact;
    }
    if (!exact->complete) {
      // A partial co-marking relation is an *under*-approximation —
      // feeding it to rules 1/4 could miss real overlaps. Fall back to
      // the sound structural / static procedures and say so.
      report.warnings.push_back(
          {Rule::kParallelDisjoint,
           "exact model check stopped early (" + exact->cutoff_reason +
               ", " + std::to_string(exact->state_count) +
               " states); falling back to structural/static procedures"});
      exact = nullptr;
    }
  }
  // Rule 1 with the exact relation needs no per-marking machinery: Def
  // 3.2 rule 1 quantifies over *pairs* of parallel states, and two
  // states' association sets are jointly active in some reachable
  // marking iff the states are co-marked there — which is exactly what
  // exact->concurrency records. Pairwise over the exact relation is
  // therefore equivalent to checking disjointness per whole reachable
  // marking (tests/mc_test.cpp Rule1PairwiseEqualsWholeMarking).
  const ParallelRelation parallel(system.control().net(), options, cache,
                                  exact, report);
  check_parallel_disjoint(system, parallel, report);
  if (exact != nullptr) {
    check_safety_exact(system, *exact, report);
    check_conflict_free_exact(system, *exact, report);
  } else {
    check_safety(system, options, cache, report);
    check_conflict_free(system, report);
  }
  check_no_comb_loop(system, parallel, report);
  check_sequential_result(system, options, report);
  return report;
}

}  // namespace

CheckReport check_properly_designed(const System& system,
                                    const CheckOptions& options) {
  return check_properly_designed_impl(system, options, nullptr);
}

CheckReport check_properly_designed(const System& system,
                                    const semantics::AnalysisCache& cache,
                                    const CheckOptions& options) {
  if (!cache.bound_to(system)) {
    throw Error(
        "check_properly_designed: analysis cache bound to a different "
        "system");
  }
  // A cache built with a different exploration budget would answer rules
  // 2 and 4 against markings the caller did not ask about; recompute.
  const bool usable = cache.reachability_options() == options.reachability;
  return check_properly_designed_impl(system, options,
                                      usable ? &cache : nullptr);
}

void require_properly_designed(const System& system,
                               const CheckOptions& options) {
  const CheckReport report = check_properly_designed(system, options);
  if (!report.ok()) {
    throw DesignRuleError("system '" + system.name() +
                          "' is not properly designed: " + report.to_string());
  }
}

}  // namespace camad::dcf
