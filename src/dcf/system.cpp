#include "dcf/system.h"

#include <algorithm>

#include "util/error.h"

namespace camad::dcf {
namespace {

void push_unique(std::vector<VertexId>& out, VertexId v) {
  if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
}

}  // namespace

System::System(DataPath datapath, ControlNet control, std::string name)
    : name_(std::move(name)),
      datapath_(std::move(datapath)),
      control_(std::move(control)) {}

std::vector<VertexId> System::associated_vertices(
    petri::PlaceId state) const {
  std::vector<VertexId> out;
  for (ArcId a : control_.controlled_arcs(state)) {
    push_unique(out, datapath_.arc_target_vertex(a));
  }
  return out;
}

std::vector<VertexId> System::domain(petri::PlaceId state) const {
  std::vector<VertexId> out;
  for (ArcId a : control_.controlled_arcs(state)) {
    push_unique(out, datapath_.arc_source_vertex(a));
  }
  return out;
}

std::vector<VertexId> System::codomain(petri::PlaceId state) const {
  return associated_vertices(state);
}

std::vector<VertexId> System::result_set(petri::PlaceId state) const {
  std::vector<VertexId> out;
  for (VertexId v : codomain(state)) {
    if (datapath_.is_sequential_vertex(v)) push_unique(out, v);
  }
  return out;
}

bool System::touches_environment(petri::PlaceId state) const {
  const auto& arcs = control_.controlled_arcs(state);
  return std::any_of(arcs.begin(), arcs.end(), [this](ArcId a) {
    return datapath_.is_external_arc(a);
  });
}

void System::validate() const {
  datapath_.validate();
  for (petri::PlaceId s : control_.net().places()) {
    for (ArcId a : control_.controlled_arcs(s)) {
      if (a.index() >= datapath_.arc_count()) {
        throw ModelError("validate: C(" + control_.net().name(s) +
                         ") references a nonexistent arc");
      }
    }
  }
  for (petri::TransitionId t : control_.net().transitions()) {
    for (PortId p : control_.guards(t)) {
      if (p.index() >= datapath_.port_count()) {
        throw ModelError("validate: guard of " + control_.net().name(t) +
                         " references a nonexistent port");
      }
      if (datapath_.direction(p) != PortDir::kOut) {
        throw ModelError("validate: guard of " + control_.net().name(t) +
                         " must be an output port (G : O -> 2^T)");
      }
    }
  }
}

}  // namespace camad::dcf
