#include "dcf/guardinfo.h"

#include <optional>

namespace camad::dcf {
namespace {

/// Positive representative of a complementary predicate pair, or the code
/// itself when it is already canonical / not a predicate.
OpCode positive_sibling_code(OpCode code) {
  switch (code) {
    case OpCode::kNe: return OpCode::kEq;
    case OpCode::kGe: return OpCode::kLt;
    case OpCode::kLe: return OpCode::kGt;
    default: return code;
  }
}

/// The single source feeding a one-input vertex's only input port, if the
/// vertex has exactly one input with exactly one arc.
std::optional<PortId> sole_source(const DataPath& dp, VertexId v) {
  const auto& ins = dp.input_ports(v);
  if (ins.size() != 1) return std::nullopt;
  const auto& arcs = dp.arcs_into(ins[0]);
  if (arcs.size() != 1) return std::nullopt;
  return dp.arc_source(arcs[0]);
}

}  // namespace

GuardClass classify_guard_port(const System& system, PortId port) {
  const DataPath& dp = system.datapath();
  GuardClass out{port, true, false, {}};
  PortId p = port;

  // One level of condition-register indirection.
  if (dp.operation(p).code == OpCode::kReg) {
    const VertexId v = dp.owner(p);
    const auto& ins = dp.input_ports(v);
    if (ins.size() == 1 && dp.arcs_into(ins[0]).size() == 1) {
      const ArcId latch_arc = dp.arcs_into(ins[0])[0];
      out.latched = true;
      out.latch_states = system.control().controlling_states(latch_arc);
      p = dp.arc_source(latch_arc);
    }
  }

  // q = NOT base.
  if (dp.operation(p).code == OpCode::kNot) {
    if (const auto src = sole_source(dp, dp.owner(p))) {
      out.positive = !out.positive;
      p = *src;
    }
  }

  // Negative comparator of a same-vertex complementary pair.
  const OpCode code = dp.operation(p).code;
  const OpCode sibling_code = positive_sibling_code(code);
  if (sibling_code != code) {
    PortId sibling = PortId();
    std::size_t matches = 0;
    for (PortId o : dp.output_ports(dp.owner(p))) {
      if (dp.operation(o).code == sibling_code) {
        sibling = o;
        ++matches;
      }
    }
    if (matches == 1) {
      out.positive = !out.positive;
      p = sibling;
    }
  }

  out.base = p;
  return out;
}

bool complementary_guard_ports(const System& system, PortId a, PortId b) {
  const GuardClass ca = classify_guard_port(system, a);
  const GuardClass cb = classify_guard_port(system, b);
  return ca.base == cb.base && ca.positive != cb.positive;
}

}  // namespace camad::dcf
