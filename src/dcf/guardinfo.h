// Guard-port classification shared by the Def 3.2 rule-3 checker and the
// model checker's guard-exclusive successor relation.
//
// A guard port is canonicalized to a (base port, polarity) pair by peeling
// the patterns the BDL compiler emits, one level each:
//   * a condition register's output maps to its single latch source (and
//     records *which control states may relatch it* — the controlling
//     states of the arc into the register's input);
//   * a kNot unit's output maps to its single source with flipped polarity;
//   * the "negative" comparator of a complementary pair on one vertex
//     (ne/ge/le) maps to its unique positive sibling (eq/lt/gt) with
//     flipped polarity — both read the vertex's shared inputs.
// Two guard ports are provably complementary iff they canonicalize to the
// same base with opposite polarities.
#pragma once

#include <vector>

#include "dcf/system.h"

namespace camad::dcf {

struct GuardClass {
  /// Canonical representative output port of the condition value.
  PortId base;
  /// port ≡ base when true, port ≡ ¬base when false.
  bool positive = true;
  /// The guard is a condition register over `base`: its value is frozen
  /// between latch events, so a fired guard *commits* the condition's
  /// polarity until a latch state is marked again.
  bool latched = false;
  /// Control states that may relatch the condition register (controlling
  /// states of the arc into its input); empty unless `latched`.
  std::vector<petri::PlaceId> latch_states;
};

/// Canonicalizes one guard port. Total: unrecognized shapes classify as
/// themselves (base = port, positive, not latched).
GuardClass classify_guard_port(const System& system, PortId port);

/// True iff `a` and `b` are provably complementary guard sources (same
/// canonical base, opposite polarity). This is the static exclusivity
/// the rule-3 checker accepts and the relation mc refines dynamically.
bool complementary_guard_ports(const System& system, PortId a, PortId b);

}  // namespace camad::dcf
