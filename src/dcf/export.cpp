#include "dcf/export.h"

#include "util/dot.h"

namespace camad::dcf {
namespace {

std::string vertex_label(const DataPath& dp, VertexId v) {
  std::string label = dp.name(v);
  switch (dp.kind(v)) {
    case VertexKind::kInput: return label + " [in]";
    case VertexKind::kOutput: return label + " [out]";
    case VertexKind::kInternal: break;
  }
  for (PortId o : dp.output_ports(v)) {
    const Operation& op = dp.operation(o);
    label += "\\n" + std::string(op_name(op.code));
    if (op.code == OpCode::kConst) label += "=" + std::to_string(op.immediate);
  }
  return label;
}

void emit_datapath(const DataPath& dp, DotWriter& dot) {
  for (VertexId v : dp.vertices()) {
    const char* shape = "box";
    if (dp.kind(v) != VertexKind::kInternal) shape = "invhouse";
    dot.add_node("v" + std::to_string(v.value()),
                 {{"shape", shape}, {"label", vertex_label(dp, v)}});
  }
  for (ArcId a : dp.arcs()) {
    dot.add_edge("v" + std::to_string(dp.arc_source_vertex(a).value()),
                 "v" + std::to_string(dp.arc_target_vertex(a).value()),
                 {{"label", "a" + std::to_string(a.value())}});
  }
}

}  // namespace

std::string datapath_to_dot(const DataPath& dp) {
  DotWriter dot("datapath");
  emit_datapath(dp, dot);
  return dot.finish();
}

std::string system_to_dot(const System& system) {
  DotWriter dot(system.name());
  dot.begin_cluster("datapath", "data path");
  emit_datapath(system.datapath(), dot);
  dot.end_cluster();

  dot.begin_cluster("control", "control net");
  const auto& net = system.control().net();
  for (petri::PlaceId p : net.places()) {
    DotWriter::Attrs attrs{{"shape", "circle"}, {"label", net.name(p)}};
    if (net.initial_tokens(p) > 0) {
      attrs.emplace_back("style", "filled");
      attrs.emplace_back("fillcolor", "lightblue");
    }
    dot.add_node("s" + std::to_string(p.value()), attrs);
  }
  for (petri::TransitionId t : net.transitions()) {
    dot.add_node("t" + std::to_string(t.value()),
                 {{"shape", "box"}, {"label", net.name(t)}});
    for (petri::PlaceId p : net.pre(t)) {
      dot.add_edge("s" + std::to_string(p.value()),
                   "t" + std::to_string(t.value()));
    }
    for (petri::PlaceId p : net.post(t)) {
      dot.add_edge("t" + std::to_string(t.value()),
                   "s" + std::to_string(p.value()));
    }
  }
  dot.end_cluster();

  // Control mapping: dashed edge from state to the target vertex of each
  // controlled arc; guards as dotted edges from port-owning vertex.
  const DataPath& dp = system.datapath();
  for (petri::PlaceId p : net.places()) {
    for (ArcId a : system.control().controlled_arcs(p)) {
      dot.add_edge(
          "s" + std::to_string(p.value()),
          "v" + std::to_string(dp.arc_target_vertex(a).value()),
          {{"style", "dashed"}, {"color", "gray"},
           {"label", "a" + std::to_string(a.value())}});
    }
  }
  for (petri::TransitionId t : net.transitions()) {
    for (PortId g : system.control().guards(t)) {
      dot.add_edge("v" + std::to_string(dp.owner(g).value()),
                   "t" + std::to_string(t.value()),
                   {{"style", "dotted"}, {"color", "red"}});
    }
  }
  return dot.finish();
}

}  // namespace camad::dcf
