#include "dcf/control.h"

#include <algorithm>

#include "util/error.h"

namespace camad::dcf {

void ControlNet::sync_sizes() {
  control_.resize(net_.place_count());
  guards_.resize(net_.transition_count());
}

petri::PlaceId ControlNet::add_state(std::string name) {
  const petri::PlaceId id = net_.add_place(std::move(name));
  sync_sizes();
  return id;
}

petri::TransitionId ControlNet::add_transition(std::string name) {
  const petri::TransitionId id = net_.add_transition(std::move(name));
  sync_sizes();
  return id;
}

void ControlNet::control(petri::PlaceId state, ArcId arc) {
  if (state.index() >= control_.size()) {
    throw ModelError("ControlNet::control: state out of range");
  }
  auto& arcs = control_[state.index()];
  if (std::find(arcs.begin(), arcs.end(), arc) == arcs.end()) {
    arcs.push_back(arc);
  }
}

void ControlNet::guard(petri::TransitionId transition, PortId port) {
  if (transition.index() >= guards_.size()) {
    throw ModelError("ControlNet::guard: transition out of range");
  }
  auto& ports = guards_[transition.index()];
  if (std::find(ports.begin(), ports.end(), port) == ports.end()) {
    ports.push_back(port);
  }
}

const std::vector<ArcId>& ControlNet::controlled_arcs(
    petri::PlaceId state) const {
  return control_[state.index()];
}

const std::vector<PortId>& ControlNet::guards(
    petri::TransitionId transition) const {
  return guards_[transition.index()];
}

std::vector<petri::PlaceId> ControlNet::controlling_states(ArcId arc) const {
  std::vector<petri::PlaceId> out;
  for (std::size_t i = 0; i < control_.size(); ++i) {
    const auto& arcs = control_[i];
    if (std::find(arcs.begin(), arcs.end(), arc) != arcs.end()) {
      out.emplace_back(static_cast<petri::PlaceId::underlying_type>(i));
    }
  }
  return out;
}

}  // namespace camad::dcf
