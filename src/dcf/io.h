// Text serialization of data/control flow systems.
//
// A line-oriented, index-referenced format that round-trips every model
// component (vertices, ports, ops, arcs, states, transitions, flow,
// control mapping, guards, initial marking). Used for golden tests and to
// ship the example designs as data files.
#pragma once

#include <iosfwd>
#include <string>

#include "dcf/system.h"

namespace camad::dcf {

/// Serializes to the `camad-system v1` text format.
std::string save_system(const System& system);

/// Parses text produced by save_system. Throws ParseError / ModelError on
/// malformed input. The result is validated.
System load_system(const std::string& text);

}  // namespace camad::dcf
