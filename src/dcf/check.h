// "Properly designed" well-formedness checks — Def 3.2.
//
// A data/control flow system is properly designed iff
//   (1) parallel control states have disjoint association sets,
//   (2) the control net is safe,
//   (3) transitions competing for one place have mutually exclusive guards
//       (conflict-freedom),
//   (4) no control state's active subgraph contains a combinatorial loop,
//   (5) every control state's association set contains a sequential vertex.
//
// Rules (1) and (3) need relations that are undecidable in full
// generality; the checker implements the decidable procedures the paper's
// synthesis flow relies on:
//   * (1) uses the structural parallel relation ∥ of Def 2.3 by default
//     (conservative: exclusive if/else branches count as parallel), or the
//     reachability-based concurrency relation when
//     `use_reachable_concurrency` is set — an ablation measured in E5;
//   * (3) statically recognizes the complement pattern the compiler emits
//     (two condition registers latched from a predicate port and its
//     negation in the same state); other guard pairs are reported as
//     *warnings* and left to the simulator's runtime conflict monitor.
#pragma once

#include <string>
#include <vector>

#include "dcf/system.h"
#include "petri/reachability.h"

namespace camad::semantics {
class AnalysisCache;
}  // namespace camad::semantics

namespace camad::dcf {

enum class Rule : std::uint8_t {
  kParallelDisjoint = 1,
  kSafety = 2,
  kConflictFree = 3,
  kNoCombLoop = 4,
  kSequentialResult = 5,
};

std::string_view rule_name(Rule rule);

struct Violation {
  Rule rule;
  std::string message;
};

struct CheckOptions {
  /// Refine ∥ with reachability instead of the paper's structural relation.
  bool use_reachable_concurrency = false;
  /// Evaluate rules 1-3 against the guard-aware reachable state space
  /// (mc::model_check) instead of the structural / static procedures:
  /// rule 1 quantifies over the exact co-marking relation, rule 2 uses
  /// the guard-refined safety verdict (with a counterexample trace), and
  /// rule 3 reports only conflicts that are reachably co-enabled. If the
  /// model check exhausts its budget (reachability.max_markings states)
  /// the checker falls back to the procedures above and records a
  /// warning — it never silently weakens a verdict with a partial
  /// relation. Supersedes use_reachable_concurrency.
  bool exact = false;
  /// Safety: try the polynomial P-invariant certificate before falling
  /// back to explicit reachability.
  bool try_invariant_certificate = true;
  /// Rule 5 exemption for *control-only* states (C(S) = ∅). Fork/join
  /// realizations of general dependence DAGs need pure synchronization
  /// places that latch nothing; the paper's rule predates them. Set to
  /// false for the literal Def 3.2 reading.
  bool allow_control_only_states = true;
  petri::ReachabilityOptions reachability;
};

struct CheckReport {
  std::vector<Violation> violations;
  /// Conditions that could not be established statically (rule 3 guard
  /// pairs); a properly designed system may legitimately have these.
  std::vector<Violation> warnings;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::string to_string() const;
};

/// Runs all five checks; never throws on rule violations (only on
/// malformed models). The cached overload reuses reachability /
/// concurrency / order results from `cache` (which must be bound to
/// `system`) for rules 1, 2 and 4 — but only when the cache was built
/// with the same ReachabilityOptions as `options.reachability`; on a
/// mismatch it recomputes rather than report against a different budget.
CheckReport check_properly_designed(const System& system,
                                    const CheckOptions& options = {});
CheckReport check_properly_designed(const System& system,
                                    const semantics::AnalysisCache& cache,
                                    const CheckOptions& options = {});

/// Throws DesignRuleError with the report text unless `ok()`.
void require_properly_designed(const System& system,
                               const CheckOptions& options = {});

}  // namespace camad::dcf
