#include "obs/report.h"

#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "util/json.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace camad::obs {

std::uint64_t peak_rss_bytes() {
#if defined(__linux__)
  // VmHWM is the high-water mark of the resident set, in kB.
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    std::istringstream fields(line.substr(6));
    std::uint64_t kb = 0;
    if (fields >> kb) return kb * 1024;
    break;
  }
#endif
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
    // ru_maxrss is kB on Linux/BSD, bytes on macOS.
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
#endif
  }
#endif
  return 0;
}

RunReport::RunReport(RunReportOptions options)
    : options_(std::move(options)),
      start_(std::chrono::steady_clock::now()) {}

void RunReport::note(std::string_view key, std::string_view value) {
  notes_.insert_or_assign(std::string(key), std::string(value));
}

void RunReport::write(std::ostream& out, int exit_status,
                      const MetricsRegistry& metrics) const {
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_)
          .count();
  JsonWriter writer(out);
  writer.begin_object();
  writer.kv("schema_version", kSchemaVersion);
  writer.kv("tool", options_.tool);
  writer.kv("command", options_.command);
  writer.kv("file", options_.file);
  writer.key("args").begin_array();
  for (const std::string& arg : options_.args) writer.value(arg);
  writer.end_array();
  writer.kv("wall_seconds", wall_seconds);
  writer.kv("exit_status", exit_status);
  writer.kv("peak_rss_bytes", peak_rss_bytes());
  writer.kv("hardware_threads",
            static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  writer.key("notes").begin_object();
  for (const auto& [key, value] : notes_) writer.kv(key, value);
  writer.end_object();
  // The registry renders its own complete document; strip the trailing
  // newline so it embeds as a value.
  std::string snapshot = metrics.to_json();
  while (!snapshot.empty() && snapshot.back() == '\n') snapshot.pop_back();
  writer.key("metrics").raw(snapshot);
  writer.end_object();
  out << '\n';
}

}  // namespace camad::obs
