// Named counters / gauges / histograms with a JSON snapshot exporter.
//
// A MetricsRegistry is a passive sink the CLIs own for the duration of a
// command: library layers keep reporting through their existing stats
// structs (sim::SimStats, semantics::AnalysisCacheStats,
// transform::PassStats), and the adapters in obs/adapters.h publish
// those structs into one registry under a uniform naming scheme
// ("sim.plan_cache.hits", "analysis.reachability.misses",
// "pass.merge-all.seconds"). `--metrics[=FILE]` then snapshots the
// registry as machine-readable JSON next to the trace timeline.
//
// Thread-safe: every method takes the registry mutex; the recording
// sites are coarse (per run / per pass / per sweep), not per cycle.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

namespace camad::obs {

/// Snapshot of one histogram. Quantiles are approximate: samples land in
/// power-of-two buckets and a quantile reports its bucket's geometric
/// midpoint.
struct HistogramStats {
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

class MetricsRegistry {
 public:
  /// Monotonic counter.
  void add(std::string_view counter, std::uint64_t delta = 1);
  /// Last-write-wins gauge.
  void set(std::string_view gauge, double value);
  /// Histogram sample. Non-finite samples never enter the histogram;
  /// each one instead increments a `<histogram>.dropped` counter so the
  /// loss shows up in snapshots.
  void observe(std::string_view histogram, double sample);

  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  [[nodiscard]] double gauge(std::string_view name) const;
  [[nodiscard]] HistogramStats histogram(std::string_view name) const;
  [[nodiscard]] bool empty() const;

  /// {"counters":{...},"gauges":{...},"histograms":{name:
  /// {count,sum,min,max,mean,p50,p90,p99}}} — keys sorted, so snapshots
  /// of identical recordings compare equal.
  void write_json(std::ostream& out) const;
  [[nodiscard]] std::string to_json() const;

 private:
  /// Power-of-two buckets covering 2^-32 .. 2^31 (bucket i holds samples
  /// in [2^(i-33), 2^(i-32))), clamped at the ends.
  static constexpr std::size_t kBuckets = 64;
  struct Histogram {
    HistogramStats stats;
    std::array<std::uint64_t, kBuckets> buckets{};
  };
  static std::size_t bucket_of(double sample);
  static double quantile(const Histogram& h, double q);

  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace camad::obs
