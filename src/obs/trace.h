// Chrome-trace-event recording for the performance-critical engines.
//
// A TraceSession collects duration spans (ph B/E), instant events (ph i)
// and counter samples (ph C) into per-thread buffers and serializes them
// as a chrome://tracing- / Perfetto-loadable JSON document
// ({"traceEvents": [...]}). One session can be *activated* as the
// process-wide recorder; instrumentation sites all over the library
// (sim::Simulator, semantics::AnalysisCache, transform::PassPipeline,
// synth::optimize, gen's oracle battery) funnel into whatever session is
// active.
//
// Overhead contract: with no active session an instrumentation site
// costs one relaxed-ish atomic load and performs no allocation — the
// ObsSpan constructors take string_views and only materialize strings
// after the session check. bench/bench_obs.cpp holds the sim engine to
// that contract (disabled tracing within ~2% of the uninstrumented
// throughput).
//
// Threading: any thread may record into an active session. Each thread
// gets its own buffer (created on first use, owned by the session so it
// outlives short-lived pool workers); appends take only that buffer's
// mutex. Export may run concurrently with recording and sees a
// consistent prefix. Activation/deactivation is not synchronized against
// in-flight spans — keep the session alive until every recording thread
// has joined (the CLI pattern: activate, run, join, deactivate, write).
//
// Determinism: TraceOptions::deterministic replaces wall-clock
// timestamps with per-thread logical ticks and uses registration-order
// thread ids, so two identical executions serialize byte-identically —
// the `--trace-deterministic` CLI mode tests golden-compare against.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace camad::obs {

class TraceSession;

namespace detail {
/// The process-wide active session (nullptr = tracing disabled). Relaxed
/// loads are fine for the fast-path check; activation publishes with
/// release so a freshly constructed session is visible to recorders.
extern std::atomic<TraceSession*> g_active_session;
}  // namespace detail

struct TraceOptions {
  /// Logical per-thread clocks + registration-order thread ids instead
  /// of wall time, for byte-identical traces of identical executions.
  bool deterministic = false;
};

class TraceSession {
 public:
  explicit TraceSession(TraceOptions options = {});
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Publishes this session as the process-wide recorder. Only one
  /// session is active at a time; activating another replaces it.
  void activate();
  /// Un-publishes (no-op if another session took over meanwhile).
  void deactivate();
  [[nodiscard]] static TraceSession* active() {
    return detail::g_active_session.load(std::memory_order_acquire);
  }

  /// Opens a duration span on the calling thread's track.
  void begin(std::string name);
  /// As begin(), with a pre-rendered JSON object ("{...}") of arguments.
  void begin(std::string name, std::string args_json);
  /// Closes the innermost open span on the calling thread's track.
  void end();
  /// Thread-scoped instant event, optionally with a JSON args object.
  void instant(std::string name, std::string args_json = {});
  /// Counter-track sample.
  void counter(std::string name, double value);
  /// Names the calling thread's track ("sim-worker-3") via a metadata
  /// event.
  void name_thread(std::string name);

  [[nodiscard]] const TraceOptions& options() const { return options_; }
  /// Total recorded events across all threads (metadata excluded).
  [[nodiscard]] std::size_t event_count() const;

  /// Serializes {"traceEvents": [...]} — loadable by chrome://tracing
  /// and Perfetto. Open spans are closed at their thread's last
  /// timestamp so the document is always well-formed.
  void write_json(std::ostream& out) const;
  [[nodiscard]] std::string to_json() const;

 private:
  struct Event {
    char phase;         ///< 'B', 'E', 'i', 'C'
    std::uint64_t ts;   ///< ns since session start, or logical tick
    std::string name;   ///< empty for 'E'
    std::string args;   ///< pre-rendered JSON object, possibly empty
    double value = 0;   ///< 'C' only
  };
  struct ThreadBuffer {
    std::mutex mu;
    std::uint32_t tid = 0;
    std::string thread_name;
    std::vector<Event> events;
    std::size_t open_spans = 0;
    std::uint64_t logical = 0;
  };

  ThreadBuffer& local_buffer();
  std::uint64_t timestamp(ThreadBuffer& buffer);
  void append(Event event);

  TraceOptions options_;
  std::uint64_t id_;  ///< process-unique, keys the thread-local lookup
  std::chrono::steady_clock::time_point start_;
  mutable std::mutex mu_;  ///< guards buffers_
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// True iff a session is currently active. Call sites that must build a
/// dynamic name or args string guard on this (or on active()) so the
/// disabled path allocates nothing.
[[nodiscard]] inline bool tracing_enabled() {
  return TraceSession::active() != nullptr;
}

/// RAII duration span against the active session (no-op when none).
/// Captures the session at construction so the matching end() goes to
/// the same recorder even if activation changes mid-span.
class ObsSpan {
 public:
  explicit ObsSpan(std::string_view name) : session_(TraceSession::active()) {
    if (session_ != nullptr) session_->begin(std::string(name));
  }
  /// Concatenated name ("pass." + name); assembled only when recording.
  ObsSpan(std::string_view prefix, std::string_view suffix)
      : session_(TraceSession::active()) {
    if (session_ != nullptr) {
      std::string name;
      name.reserve(prefix.size() + suffix.size());
      name.append(prefix);
      name.append(suffix);
      session_->begin(std::move(name));
    }
  }
  /// Span with arguments; `args_fn` renders the JSON args object and is
  /// invoked only when a session is active.
  template <typename Fn>
  ObsSpan(std::string_view name, Fn&& args_fn)
    requires std::is_invocable_r_v<std::string, Fn>
      : session_(TraceSession::active()) {
    if (session_ != nullptr) {
      session_->begin(std::string(name), std::forward<Fn>(args_fn)());
    }
  }
  ~ObsSpan() {
    if (session_ != nullptr) session_->end();
  }

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

 private:
  TraceSession* session_;
};

}  // namespace camad::obs
