#include "obs/metrics.h"

#include <cmath>
#include <sstream>

#include "util/json.h"

namespace camad::obs {

void MetricsRegistry::add(std::string_view counter, std::uint64_t delta) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(counter);
  if (it == counters_.end()) {
    counters_.emplace(std::string(counter), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::set(std::string_view gauge, double value) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(gauge);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(gauge), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::observe(std::string_view histogram, double sample) {
  if (!std::isfinite(sample)) {
    // Make the data loss visible in snapshots instead of silently
    // shrinking the histogram's count.
    const std::lock_guard<std::mutex> lock(mu_);
    ++counters_[std::string(histogram) + ".dropped"];
    return;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(histogram);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(histogram), Histogram{}).first;
  }
  Histogram& h = it->second;
  if (h.stats.count == 0) {
    h.stats.min = sample;
    h.stats.max = sample;
  } else {
    h.stats.min = std::min(h.stats.min, sample);
    h.stats.max = std::max(h.stats.max, sample);
  }
  ++h.stats.count;
  h.stats.sum += sample;
  ++h.buckets[bucket_of(sample)];
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

HistogramStats MetricsRegistry::histogram(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramStats{} : it->second.stats;
}

bool MetricsRegistry::empty() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

std::size_t MetricsRegistry::bucket_of(double sample) {
  if (sample <= 0) return 0;
  const int exponent = static_cast<int>(std::ceil(std::log2(sample)));
  const int index = exponent + 32;
  if (index < 0) return 0;
  if (index >= static_cast<int>(kBuckets)) return kBuckets - 1;
  return static_cast<std::size_t>(index);
}

double MetricsRegistry::quantile(const Histogram& h, double q) {
  if (h.stats.count == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(h.stats.count - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += h.buckets[i];
    if (seen > target) {
      // Geometric midpoint of [2^(i-33), 2^(i-32)), clamped to the
      // observed range.
      const double mid =
          std::exp2(static_cast<double>(static_cast<int>(i) - 32) - 0.5);
      return std::min(std::max(mid, h.stats.min), h.stats.max);
    }
  }
  return h.stats.max;
}

void MetricsRegistry::write_json(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  JsonWriter writer(out);
  writer.begin_object();
  writer.key("counters").begin_object();
  for (const auto& [name, value] : counters_) writer.kv(name, value);
  writer.end_object();
  writer.key("gauges").begin_object();
  for (const auto& [name, value] : gauges_) writer.kv(name, value);
  writer.end_object();
  writer.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    writer.key(name)
        .begin_object()
        .kv("count", h.stats.count)
        .kv("sum", h.stats.sum)
        .kv("min", h.stats.min)
        .kv("max", h.stats.max)
        .kv("mean", h.stats.mean())
        .kv("p50", quantile(h, 0.5))
        .kv("p90", quantile(h, 0.9))
        .kv("p99", quantile(h, 0.99))
        .end_object();
  }
  writer.end_object();
  writer.end_object();
  out << '\n';
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

}  // namespace camad::obs
