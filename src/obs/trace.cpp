#include "obs/trace.h"

#include <algorithm>
#include <sstream>

#include "util/json.h"

namespace camad::obs {

namespace detail {
std::atomic<TraceSession*> g_active_session{nullptr};
}  // namespace detail

namespace {

std::atomic<std::uint64_t> g_session_ids{0};

/// Thread-local cache of "my buffer inside session X". The session id —
/// not the pointer — keys the cache, so a new session reusing a dead
/// session's address never resurrects a stale buffer.
struct TlsSlot {
  std::uint64_t session_id = 0;
  void* buffer = nullptr;
};
thread_local TlsSlot tls_slot;

}  // namespace

TraceSession::TraceSession(TraceOptions options)
    : options_(options),
      id_(g_session_ids.fetch_add(1, std::memory_order_relaxed) + 1),
      start_(std::chrono::steady_clock::now()) {}

TraceSession::~TraceSession() { deactivate(); }

void TraceSession::activate() {
  detail::g_active_session.store(this, std::memory_order_release);
}

void TraceSession::deactivate() {
  TraceSession* expected = this;
  detail::g_active_session.compare_exchange_strong(
      expected, nullptr, std::memory_order_acq_rel);
}

TraceSession::ThreadBuffer& TraceSession::local_buffer() {
  if (tls_slot.session_id == id_ && tls_slot.buffer != nullptr) {
    return *static_cast<ThreadBuffer*>(tls_slot.buffer);
  }
  const std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  ThreadBuffer* buffer = buffers_.back().get();
  buffer->tid = static_cast<std::uint32_t>(buffers_.size() - 1);
  tls_slot = {id_, buffer};
  return *buffer;
}

std::uint64_t TraceSession::timestamp(ThreadBuffer& buffer) {
  if (options_.deterministic) return buffer.logical++;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

void TraceSession::begin(std::string name) {
  begin(std::move(name), std::string());
}

void TraceSession::begin(std::string name, std::string args_json) {
  ThreadBuffer& buffer = local_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(
      {'B', timestamp(buffer), std::move(name), std::move(args_json)});
  ++buffer.open_spans;
}

void TraceSession::end() {
  ThreadBuffer& buffer = local_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mu);
  if (buffer.open_spans == 0) return;  // unmatched end: drop, stay valid
  --buffer.open_spans;
  buffer.events.push_back({'E', timestamp(buffer), {}, {}});
}

void TraceSession::instant(std::string name, std::string args_json) {
  ThreadBuffer& buffer = local_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(
      {'i', timestamp(buffer), std::move(name), std::move(args_json)});
}

void TraceSession::counter(std::string name, double value) {
  ThreadBuffer& buffer = local_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(
      {'C', timestamp(buffer), std::move(name), {}, value});
}

void TraceSession::name_thread(std::string name) {
  ThreadBuffer& buffer = local_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.thread_name = std::move(name);
}

std::size_t TraceSession::event_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t count = 0;
  for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    count += buffer->events.size();
  }
  return count;
}

void TraceSession::write_json(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  JsonWriter writer(out);
  writer.begin_object().key("traceEvents").begin_array();
  // Microsecond resolution with fractional digits keeps nanosecond
  // ordering while matching the trace-event format's µs convention.
  const auto emit_ts = [&](std::uint64_t ts) {
    if (options_.deterministic) {
      writer.kv("ts", ts);
    } else {
      writer.key("ts").raw(json_number(static_cast<double>(ts) / 1000.0));
    }
  };
  // Buffers are registration-ordered; tids are their indices, so the
  // serialization order is deterministic.
  for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    if (!buffer->thread_name.empty()) {
      writer.begin_object()
          .kv("ph", "M")
          .kv("ts", 0)
          .kv("pid", 0)
          .kv("tid", buffer->tid)
          .kv("name", "thread_name")
          .key("args")
          .begin_object()
          .kv("name", buffer->thread_name)
          .end_object()
          .end_object();
    }
    std::uint64_t last_ts = 0;
    for (const Event& event : buffer->events) {
      last_ts = std::max(last_ts, event.ts);
      writer.begin_object();
      writer.key("ph").value(std::string_view(&event.phase, 1));
      emit_ts(event.ts);
      writer.kv("pid", 0).kv("tid", buffer->tid);
      switch (event.phase) {
        case 'B':
          writer.kv("cat", "camad").kv("name", event.name);
          if (!event.args.empty()) writer.key("args").raw(event.args);
          break;
        case 'E':
          break;
        case 'i':
          writer.kv("cat", "camad").kv("name", event.name).kv("s", "t");
          if (!event.args.empty()) writer.key("args").raw(event.args);
          break;
        case 'C':
          writer.kv("name", event.name)
              .key("args")
              .begin_object()
              .key("value")
              .raw(json_number(event.value))
              .end_object();
          break;
        default:
          break;
      }
      writer.end_object();
    }
    // Close spans still open at export time so B/E stay balanced.
    for (std::size_t i = 0; i < buffer->open_spans; ++i) {
      writer.begin_object().kv("ph", "E");
      emit_ts(last_ts);
      writer.kv("pid", 0).kv("tid", buffer->tid).end_object();
    }
  }
  writer.end_array().kv("displayTimeUnit", "ms").end_object();
  out << '\n';
}

std::string TraceSession::to_json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

}  // namespace camad::obs
