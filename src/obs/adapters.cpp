#include "obs/adapters.h"

#include <string>

#include "obs/trace.h"

namespace camad::obs {
namespace {

std::string joined(std::string_view prefix, std::string_view suffix) {
  std::string out;
  out.reserve(prefix.size() + 1 + suffix.size());
  out.append(prefix);
  out.push_back('.');
  out.append(suffix);
  return out;
}

}  // namespace

void publish_sim_stats(MetricsRegistry& registry, const sim::SimStats& stats,
                       std::string_view prefix) {
  const std::string base = joined(prefix, "plan_cache");
  registry.add(base + ".hits", stats.plan_cache_hits);
  registry.add(base + ".misses", stats.plan_cache_misses);
  registry.add(base + ".evictions", stats.plan_cache_evictions);
  registry.set(base + ".size", static_cast<double>(stats.plan_cache_size));
  if (stats.plan_cache_bytes > 0) {
    registry.set(base + ".bytes",
                 static_cast<double>(stats.plan_cache_bytes));
  }
  if (stats.steps_evaluated + stats.steps_skipped > 0) {
    const std::string steps = joined(prefix, "steps");
    registry.add(steps + ".evaluated", stats.steps_evaluated);
    registry.add(steps + ".skipped", stats.steps_skipped);
    registry.set(joined(prefix, "activity_factor"), stats.activity_factor());
    // The engine pre-buckets wavefront sizes (bucket 0 = empty, bucket b
    // = width-b sizes, i.e. [2^(b-1), 2^b)); export the counts as-is
    // rather than replaying millions of per-cycle samples.
    const std::string wavefront = joined(prefix, "wavefront");
    for (std::size_t b = 0; b < sim::SimStats::kWavefrontBuckets; ++b) {
      if (stats.wavefront_hist[b] == 0) continue;
      registry.add(wavefront + ".bucket_" + std::to_string(b),
                   stats.wavefront_hist[b]);
    }
  }
  if (stats.lanes > 0) {
    registry.set(joined(prefix, "lanes"), static_cast<double>(stats.lanes));
  }
}

void publish_mc_stats(MetricsRegistry& registry, const mc::McResult& result,
                      std::string_view prefix) {
  registry.add(joined(prefix, "states"), result.state_count);
  registry.add(joined(prefix, "markings"), result.marking_count);
  registry.add(joined(prefix, "depth"), result.depth);
  registry.add(joined(prefix, "conflicts"), result.conflicts.size());
  registry.set(joined(prefix, "states_per_second"),
               result.stats.states_per_second);
  registry.set(joined(prefix, "max_frontier"),
               static_cast<double>(result.stats.max_frontier));
  registry.set(joined(prefix, "threads"),
               static_cast<double>(result.stats.threads));
  const std::string store = joined(prefix, "store");
  registry.set(store + ".bytes", static_cast<double>(result.stats.store_bytes));
  if (result.state_count > 0) {
    registry.set(store + ".bytes_per_state",
                 static_cast<double>(result.stats.store_bytes) /
                     static_cast<double>(result.state_count));
  }
  registry.set(store + ".shards",
               static_cast<double>(result.stats.shard_count));
  // One sample per shard: the histogram's min/mean/max read directly as
  // the store's occupancy balance.
  const std::string occupancy = store + ".shard_entries";
  for (const std::size_t entries : result.stats.shard_entries) {
    registry.observe(occupancy, static_cast<double>(entries));
  }
}

void publish_analysis_stats(MetricsRegistry& registry,
                            const semantics::AnalysisCacheStats& stats,
                            std::string_view prefix) {
  for (std::size_t i = 0; i < semantics::kAnalysisCount; ++i) {
    if (stats.hits[i] + stats.misses[i] + stats.transfers[i] == 0) continue;
    const std::string base = joined(
        prefix, semantics::analysis_name(static_cast<semantics::Analysis>(i)));
    registry.add(base + ".hits", stats.hits[i]);
    registry.add(base + ".misses", stats.misses[i]);
    registry.add(base + ".transfers", stats.transfers[i]);
  }
  registry.add(joined(prefix, "hits"), stats.total_hits());
  registry.add(joined(prefix, "misses"), stats.total_misses());
  registry.add(joined(prefix, "transfers"), stats.total_transfers());
  registry.set(joined(prefix, "hit_rate"), stats.hit_rate());
}

void publish_pass_stats(MetricsRegistry& registry,
                        const std::vector<transform::PassStats>& stats,
                        std::string_view prefix) {
  for (const transform::PassStats& pass : stats) {
    const std::string base = joined(prefix, pass.name);
    registry.add(base + ".runs");
    registry.observe(base + ".seconds", pass.seconds);
    registry.set(base + ".states_before",
                 static_cast<double>(pass.states_before));
    registry.set(base + ".states_after",
                 static_cast<double>(pass.states_after));
    registry.set(base + ".vertices_before",
                 static_cast<double>(pass.vertices_before));
    registry.set(base + ".vertices_after",
                 static_cast<double>(pass.vertices_after));
  }
}

void trace_sim_stats(const sim::SimStats& stats) {
  TraceSession* session = TraceSession::active();
  if (session == nullptr) return;
  session->counter("sim.plan_cache.hits",
                   static_cast<double>(stats.plan_cache_hits));
  session->counter("sim.plan_cache.misses",
                   static_cast<double>(stats.plan_cache_misses));
  session->counter("sim.plan_cache.size",
                   static_cast<double>(stats.plan_cache_size));
}

}  // namespace camad::obs
