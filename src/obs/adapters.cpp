#include "obs/adapters.h"

#include <string>

#include "obs/trace.h"

namespace camad::obs {
namespace {

std::string joined(std::string_view prefix, std::string_view suffix) {
  std::string out;
  out.reserve(prefix.size() + 1 + suffix.size());
  out.append(prefix);
  out.push_back('.');
  out.append(suffix);
  return out;
}

}  // namespace

void publish_sim_stats(MetricsRegistry& registry, const sim::SimStats& stats,
                       std::string_view prefix) {
  const std::string base = joined(prefix, "plan_cache");
  registry.add(base + ".hits", stats.plan_cache_hits);
  registry.add(base + ".misses", stats.plan_cache_misses);
  registry.add(base + ".evictions", stats.plan_cache_evictions);
  registry.set(base + ".size", static_cast<double>(stats.plan_cache_size));
}

void publish_analysis_stats(MetricsRegistry& registry,
                            const semantics::AnalysisCacheStats& stats,
                            std::string_view prefix) {
  for (std::size_t i = 0; i < semantics::kAnalysisCount; ++i) {
    if (stats.hits[i] + stats.misses[i] + stats.transfers[i] == 0) continue;
    const std::string base = joined(
        prefix, semantics::analysis_name(static_cast<semantics::Analysis>(i)));
    registry.add(base + ".hits", stats.hits[i]);
    registry.add(base + ".misses", stats.misses[i]);
    registry.add(base + ".transfers", stats.transfers[i]);
  }
  registry.add(joined(prefix, "hits"), stats.total_hits());
  registry.add(joined(prefix, "misses"), stats.total_misses());
  registry.add(joined(prefix, "transfers"), stats.total_transfers());
  registry.set(joined(prefix, "hit_rate"), stats.hit_rate());
}

void publish_pass_stats(MetricsRegistry& registry,
                        const std::vector<transform::PassStats>& stats,
                        std::string_view prefix) {
  for (const transform::PassStats& pass : stats) {
    const std::string base = joined(prefix, pass.name);
    registry.add(base + ".runs");
    registry.observe(base + ".seconds", pass.seconds);
    registry.set(base + ".states_before",
                 static_cast<double>(pass.states_before));
    registry.set(base + ".states_after",
                 static_cast<double>(pass.states_after));
    registry.set(base + ".vertices_before",
                 static_cast<double>(pass.vertices_before));
    registry.set(base + ".vertices_after",
                 static_cast<double>(pass.vertices_after));
  }
}

void trace_sim_stats(const sim::SimStats& stats) {
  TraceSession* session = TraceSession::active();
  if (session == nullptr) return;
  session->counter("sim.plan_cache.hits",
                   static_cast<double>(stats.plan_cache_hits));
  session->counter("sim.plan_cache.misses",
                   static_cast<double>(stats.plan_cache_misses));
  session->counter("sim.plan_cache.size",
                   static_cast<double>(stats.plan_cache_size));
}

}  // namespace camad::obs
