// Bridges from the engines' existing stats structs into a
// MetricsRegistry (and onto a trace's counter tracks), so each struct
// stops hand-rolling its own reporting surface. The structs stay the
// in-library source of truth; these adapters define the exported names.
#pragma once

#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "semantics/analysis.h"
#include "sim/simulator.h"
#include "transform/passes.h"

namespace camad::obs {

/// <prefix>.plan_cache.{hits,misses,evictions} counters and a
/// <prefix>.plan_cache.size gauge. Sparse-engine runs additionally get
/// <prefix>.steps.{evaluated,skipped} counters, an
/// <prefix>.activity_factor gauge and per-bucket
/// <prefix>.wavefront.bucket_<b> counters; lane runs get a
/// <prefix>.lanes gauge.
void publish_sim_stats(MetricsRegistry& registry, const sim::SimStats& stats,
                       std::string_view prefix = "sim");

/// Per-analysis <prefix>.<analysis>.{hits,misses,transfers} counters
/// plus <prefix>.{hits,misses,transfers} totals and a <prefix>.hit_rate
/// gauge.
void publish_analysis_stats(MetricsRegistry& registry,
                            const semantics::AnalysisCacheStats& stats,
                            std::string_view prefix = "analysis");

/// Per pass: <prefix>.<name>.runs counter, <prefix>.<name>.seconds
/// histogram, and gauges for the most recent state/vertex deltas.
void publish_pass_stats(MetricsRegistry& registry,
                        const std::vector<transform::PassStats>& stats,
                        std::string_view prefix = "pass");

/// Emits the plan-cache stats onto the active trace's counter tracks
/// (no-op when tracing is disabled).
void trace_sim_stats(const sim::SimStats& stats);

}  // namespace camad::obs
