// Bridges from the engines' existing stats structs into a
// MetricsRegistry (and onto a trace's counter tracks), so each struct
// stops hand-rolling its own reporting surface. The structs stay the
// in-library source of truth; these adapters define the exported names.
#pragma once

#include <string_view>
#include <vector>

#include "mc/checker.h"
#include "obs/metrics.h"
#include "semantics/analysis.h"
#include "sim/simulator.h"
#include "transform/passes.h"

namespace camad::obs {

/// <prefix>.plan_cache.{hits,misses,evictions} counters and
/// <prefix>.plan_cache.{size,bytes} gauges. Sparse-engine runs
/// additionally get <prefix>.steps.{evaluated,skipped} counters, an
/// <prefix>.activity_factor gauge and per-bucket
/// <prefix>.wavefront.bucket_<b> counters; lane runs get a
/// <prefix>.lanes gauge.
void publish_sim_stats(MetricsRegistry& registry, const sim::SimStats& stats,
                       std::string_view prefix = "sim");

/// Model-checker run summary: <prefix>.{states,markings,depth,conflicts}
/// counters, <prefix>.{states_per_second,max_frontier,threads} gauges,
/// and the store memory accounting —
/// <prefix>.store.{bytes,bytes_per_state,shards} gauges plus a
/// <prefix>.store.shard_entries histogram with one sample per shard (the
/// occupancy balance across the sharded visited store).
void publish_mc_stats(MetricsRegistry& registry, const mc::McResult& result,
                      std::string_view prefix = "mc");

/// Per-analysis <prefix>.<analysis>.{hits,misses,transfers} counters
/// plus <prefix>.{hits,misses,transfers} totals and a <prefix>.hit_rate
/// gauge.
void publish_analysis_stats(MetricsRegistry& registry,
                            const semantics::AnalysisCacheStats& stats,
                            std::string_view prefix = "analysis");

/// Per pass: <prefix>.<name>.runs counter, <prefix>.<name>.seconds
/// histogram, and gauges for the most recent state/vertex deltas.
void publish_pass_stats(MetricsRegistry& registry,
                        const std::vector<transform::PassStats>& stats,
                        std::string_view prefix = "pass");

/// Emits the plan-cache stats onto the active trace's counter tracks
/// (no-op when tracing is disabled).
void trace_sim_stats(const sim::SimStats& stats);

}  // namespace camad::obs
