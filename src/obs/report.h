// Machine-readable per-invocation run reports.
//
// A RunReport is one JSON artifact per CLI invocation — the
// `--report[=FILE]` mode of every camadc subcommand and camad-gen. It
// embeds what a later comparison needs to interpret the numbers:
// the tool / subcommand / input file / argument list, wall time from
// construction to write, the process exit status, peak RSS, free-form
// notes (engine summaries, verdicts) and the full MetricsRegistry
// snapshot, under a schema_version so downstream consumers (CI
// artifacts, tools/bench_diff-style differs) can refuse documents they
// do not understand.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace camad::obs {

/// Peak resident set size of the calling process in bytes (VmHWM from
/// /proc/self/status, getrusage fallback); 0 when unavailable.
std::uint64_t peak_rss_bytes();

struct RunReportOptions {
  std::string tool;               ///< "camadc", "camad-gen"
  std::string command;            ///< subcommand ("verify", "soak", ...)
  std::string file;               ///< primary input path ("" if none)
  std::vector<std::string> args;  ///< remaining argv, verbatim
};

class RunReport {
 public:
  /// Bump when the document shape changes incompatibly.
  static constexpr std::uint64_t kSchemaVersion = 1;

  /// Construction starts the wall clock.
  explicit RunReport(RunReportOptions options);

  /// Free-form string annotation ("verdict": "verified", "engine":
  /// plan-cache summary, ...). Last write per key wins; keys sort in the
  /// document.
  void note(std::string_view key, std::string_view value);

  /// Writes the complete JSON document: schema_version, tool, command,
  /// file, args, wall_seconds, exit_status, peak_rss_bytes,
  /// hardware_threads, notes and the embedded metrics snapshot.
  void write(std::ostream& out, int exit_status,
             const MetricsRegistry& metrics) const;

 private:
  RunReportOptions options_;
  std::chrono::steady_clock::time_point start_;
  std::map<std::string, std::string, std::less<>> notes_;
};

}  // namespace camad::obs
