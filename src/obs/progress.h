// Live progress heartbeats for the long-running engines.
//
// The engines publish into a process-wide set of lock-free atomic slots
// (ProgressCounters): the mc BFS stores frontier size / level / store
// bytes per level and adds expanded states per chunk, optimize_pareto
// stores generation / frontier size / hypervolume per generation, and
// the batch simulator counts retired runs. A ProgressMeter samples the
// slots from its own thread and prints one heartbeat line per interval
// to stderr (or an injected stream) — the `--progress[=secs]` CLI mode.
//
// Overhead contract (same shape as trace.h): with no meter attached a
// publish site costs one relaxed atomic load (progress_enabled()) and
// nothing else. Publishing never feeds back into the engines — slots are
// plain atomics the engines only write — so results are byte-identical
// with and without a meter; tests/obs_test.cpp and the
// camadc_verify_progress_invariance ctest pin that invariance.
//
// One meter at a time: ProgressMeter's constructor claims the slots
// (resetting them) and its destructor releases them and emits a final
// summary line. Meters are not nested.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <thread>

namespace camad::obs {

/// The process-wide progress slots. Writers (engines) use relaxed
/// stores/adds guarded by progress_enabled(); the single reader is the
/// meter's sampler thread. The *_updates counters tell the meter which
/// sections have ever published, so idle sections stay off the line.
struct ProgressCounters {
  std::atomic<bool> enabled{false};

  // mc BFS: states adds per expansion chunk; the rest store per level.
  std::atomic<std::uint64_t> mc_states{0};
  std::atomic<std::uint64_t> mc_frontier{0};
  std::atomic<std::uint64_t> mc_level{0};
  std::atomic<std::uint64_t> mc_store_bytes{0};
  std::atomic<std::uint64_t> mc_updates{0};

  // optimize_pareto, stored once per generation.
  std::atomic<std::uint64_t> pareto_generation{0};
  std::atomic<std::uint64_t> pareto_frontier_points{0};
  std::atomic<double> pareto_hypervolume{0.0};
  std::atomic<std::uint64_t> pareto_updates{0};

  // Batch simulation: one add per retired run.
  std::atomic<std::uint64_t> sim_seeds{0};
  std::atomic<std::uint64_t> sim_updates{0};

  /// Zeroes every slot (not `enabled`). Meter-side only.
  void reset();
};

/// The process-wide slot instance.
ProgressCounters& progress();

/// One relaxed load — the publish-site fast path.
inline bool progress_enabled() {
  return progress().enabled.load(std::memory_order_relaxed);
}

struct ProgressMeterOptions {
  /// Seconds between heartbeat lines; values below 0.01 emit only the
  /// final summary line.
  double interval_seconds = 1.0;
  /// Destination stream; nullptr = std::cerr.
  std::ostream* out = nullptr;
};

/// RAII sampler: construction resets + enables the slots and starts the
/// sampler thread; destruction stops it, disables the slots and emits a
/// final summary line. Keep the meter alive until every publishing
/// thread has joined, and destroy it before writing result files (the
/// CLI pattern: construct, run, join, destroy, write).
class ProgressMeter {
 public:
  explicit ProgressMeter(ProgressMeterOptions options = {});
  ~ProgressMeter();

  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  /// Heartbeat lines written so far (final line included after ~).
  [[nodiscard]] std::size_t lines_emitted() const {
    return lines_.load(std::memory_order_relaxed);
  }

 private:
  void run();
  void emit(bool final_line);

  ProgressMeterOptions options_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_;
  std::uint64_t last_mc_states_ = 0;
  std::uint64_t last_sim_seeds_ = 0;
  std::atomic<std::size_t> lines_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace camad::obs
