#include "obs/progress.h"

#include <cstdio>
#include <iostream>
#include <sstream>

namespace camad::obs {

void ProgressCounters::reset() {
  mc_states.store(0, std::memory_order_relaxed);
  mc_frontier.store(0, std::memory_order_relaxed);
  mc_level.store(0, std::memory_order_relaxed);
  mc_store_bytes.store(0, std::memory_order_relaxed);
  mc_updates.store(0, std::memory_order_relaxed);
  pareto_generation.store(0, std::memory_order_relaxed);
  pareto_frontier_points.store(0, std::memory_order_relaxed);
  pareto_hypervolume.store(0.0, std::memory_order_relaxed);
  pareto_updates.store(0, std::memory_order_relaxed);
  sim_seeds.store(0, std::memory_order_relaxed);
  sim_updates.store(0, std::memory_order_relaxed);
}

ProgressCounters& progress() {
  static ProgressCounters counters;
  return counters;
}

namespace {

std::string fixed(double value, int digits) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

}  // namespace

ProgressMeter::ProgressMeter(ProgressMeterOptions options)
    : options_(options), start_(std::chrono::steady_clock::now()),
      last_(start_) {
  progress().reset();
  progress().enabled.store(true, std::memory_order_relaxed);
  if (options_.interval_seconds >= 0.01) {
    thread_ = std::thread([this] { run(); });
  }
}

ProgressMeter::~ProgressMeter() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  progress().enabled.store(false, std::memory_order_relaxed);
  emit(/*final_line=*/true);
}

void ProgressMeter::run() {
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(options_.interval_seconds));
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, interval, [this] { return stop_; })) break;
    lock.unlock();
    emit(/*final_line=*/false);
    lock.lock();
  }
}

void ProgressMeter::emit(bool final_line) {
  ProgressCounters& c = progress();
  const auto now = std::chrono::steady_clock::now();
  const double elapsed =
      std::chrono::duration<double>(now - start_).count();
  const double dt = std::chrono::duration<double>(now - last_).count();
  last_ = now;

  std::ostringstream line;
  line << "[progress " << fixed(elapsed, 1) << "s"
       << (final_line ? " final" : "") << "]";
  bool any = false;
  if (c.mc_updates.load(std::memory_order_relaxed) > 0) {
    const std::uint64_t states = c.mc_states.load(std::memory_order_relaxed);
    const double rate =
        dt > 0 ? static_cast<double>(states - last_mc_states_) / dt : 0.0;
    last_mc_states_ = states;
    line << " mc: states=" << states
         << " frontier=" << c.mc_frontier.load(std::memory_order_relaxed)
         << " level=" << c.mc_level.load(std::memory_order_relaxed)
         << " rate=" << static_cast<std::uint64_t>(rate) << "/s"
         << " store=" << c.mc_store_bytes.load(std::memory_order_relaxed)
         << "B";
    any = true;
  }
  if (c.pareto_updates.load(std::memory_order_relaxed) > 0) {
    line << " pareto: gen="
         << c.pareto_generation.load(std::memory_order_relaxed)
         << " frontier="
         << c.pareto_frontier_points.load(std::memory_order_relaxed)
         << " hv="
         << fixed(c.pareto_hypervolume.load(std::memory_order_relaxed), 4);
    any = true;
  }
  if (c.sim_updates.load(std::memory_order_relaxed) > 0) {
    const std::uint64_t seeds = c.sim_seeds.load(std::memory_order_relaxed);
    const double rate =
        dt > 0 ? static_cast<double>(seeds - last_sim_seeds_) / dt : 0.0;
    last_sim_seeds_ = seeds;
    line << " sim: seeds=" << seeds
         << " rate=" << static_cast<std::uint64_t>(rate) << "/s";
    any = true;
  }
  if (!any) line << " (no samples yet)";

  std::ostream& out = options_.out != nullptr ? *options_.out : std::cerr;
  out << line.str() << '\n';
  out.flush();
  lines_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace camad::obs
