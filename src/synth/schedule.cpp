#include "synth/schedule.h"

#include <algorithm>
#include <sstream>

#include "util/strings.h"

namespace camad::synth {
namespace {

using dcf::OpCode;
using dcf::VertexId;
using petri::PlaceId;

bool association_overlap(const dcf::System& system, PlaceId a, PlaceId b) {
  const auto& arcs_a = system.control().controlled_arcs(a);
  const auto& arcs_b = system.control().controlled_arcs(b);
  for (dcf::ArcId arc : arcs_a) {
    if (std::find(arcs_b.begin(), arcs_b.end(), arc) != arcs_b.end()) {
      return true;
    }
  }
  const auto va = system.associated_vertices(a);
  const auto vb = system.associated_vertices(b);
  for (VertexId v : va) {
    if (std::find(vb.begin(), vb.end(), v) != vb.end()) return true;
  }
  return false;
}

/// Functional-unit demand of one state: op code -> number of distinct
/// combinatorial units it activates.
std::map<OpCode, std::size_t> demand_of(const dcf::System& system,
                                        PlaceId state) {
  std::map<OpCode, std::size_t> demand;
  const dcf::DataPath& dp = system.datapath();
  for (VertexId v : system.associated_vertices(state)) {
    if (dp.kind(v) != dcf::VertexKind::kInternal) continue;
    if (dp.is_sequential_vertex(v)) continue;
    for (dcf::PortId o : dp.output_ports(v)) {
      const OpCode code = dp.operation(o).code;
      if (code != OpCode::kConst) ++demand[code];
      break;  // count the unit once, by its first output's class
    }
  }
  return demand;
}

}  // namespace

ScheduleAnalysis analyze_schedules(const dcf::System& system,
                                   const ScheduleOptions& options) {
  const semantics::DependenceRelation dep(system, options.dependence);
  ScheduleAnalysis analysis;

  for (const transform::LinearSegment& segment :
       transform::find_linear_segments(system)) {
    const std::size_t m = segment.states.size();
    SegmentSchedule sched;
    sched.states = segment.states;
    sched.serial_length = m;

    // Dependence DAG over segment-local indices.
    std::vector<std::vector<std::size_t>> preds(m);
    std::vector<std::vector<std::size_t>> succs(m);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = i + 1; j < m; ++j) {
        const bool edge =
            dep.direct(segment.states[i], segment.states[j]) ||
            (options.respect_resource_conflicts &&
             association_overlap(system, segment.states[i],
                                 segment.states[j]));
        if (edge) {
          preds[j].push_back(i);
          succs[i].push_back(j);
        }
      }
    }

    // ASAP (indices are topologically ordered).
    sched.asap.assign(m, 0);
    for (std::size_t j = 0; j < m; ++j) {
      for (std::size_t i : preds[j]) {
        sched.asap[j] = std::max(sched.asap[j], sched.asap[i] + 1);
      }
    }
    sched.asap_length = 0;
    for (std::size_t v : sched.asap) {
      sched.asap_length = std::max(sched.asap_length, v + 1);
    }

    // ALAP within the ASAP length.
    sched.alap.assign(m, sched.asap_length - 1);
    for (std::size_t i = m; i-- > 0;) {
      for (std::size_t j : succs[i]) {
        sched.alap[i] = std::min(sched.alap[i], sched.alap[j] - 1);
      }
    }
    sched.slack.assign(m, 0);
    for (std::size_t i = 0; i < m; ++i) {
      sched.slack[i] = sched.alap[i] - sched.asap[i];
    }

    // Resource-constrained list schedule: ready states (all preds done)
    // packed per step while the budget holds; priority = lower ALAP
    // (critical states first).
    std::vector<std::size_t> scheduled_step(m, static_cast<std::size_t>(-1));
    std::size_t done = 0;
    std::size_t step = 0;
    std::vector<std::map<OpCode, std::size_t>> demands(m);
    for (std::size_t i = 0; i < m; ++i) {
      demands[i] = demand_of(system, segment.states[i]);
    }
    while (done < m) {
      std::vector<std::size_t> ready;
      for (std::size_t i = 0; i < m; ++i) {
        if (scheduled_step[i] != static_cast<std::size_t>(-1)) continue;
        const bool ok = std::all_of(
            preds[i].begin(), preds[i].end(), [&](std::size_t p) {
              return scheduled_step[p] != static_cast<std::size_t>(-1) &&
                     scheduled_step[p] < step;
            });
        if (ok) ready.push_back(i);
      }
      std::sort(ready.begin(), ready.end(), [&](std::size_t a, std::size_t b) {
        return sched.alap[a] < sched.alap[b];
      });
      std::map<OpCode, std::size_t> used;
      bool placed_any = false;
      for (std::size_t i : ready) {
        bool fits = true;
        for (const auto& [code, count] : demands[i]) {
          const auto limit = options.budget.find(code);
          if (limit != options.budget.end() &&
              used[code] + count > limit->second) {
            fits = false;
            break;
          }
        }
        if (!fits) continue;
        for (const auto& [code, count] : demands[i]) used[code] += count;
        scheduled_step[i] = step;
        ++done;
        placed_any = true;
      }
      if (!placed_any && !ready.empty()) {
        // A single state exceeds the budget outright; give it its own
        // step regardless (the budget is per-step, sharing over time).
        scheduled_step[ready.front()] = step;
        ++done;
      }
      ++step;
    }
    sched.list_length = step;

    analysis.serial_total += sched.serial_length;
    analysis.asap_total += sched.asap_length;
    analysis.list_total += sched.list_length;
    analysis.segments.push_back(std::move(sched));
  }
  return analysis;
}

std::string ScheduleAnalysis::to_string(const dcf::System& system) const {
  std::ostringstream os;
  os << segments.size() << " segment(s): serial " << serial_total
     << " steps, ASAP " << asap_total << ", list " << list_total << '\n';
  for (const SegmentSchedule& sched : segments) {
    os << "  [";
    for (std::size_t i = 0; i < sched.states.size(); ++i) {
      if (i != 0) os << ' ';
      os << system.control().net().name(sched.states[i]) << '@'
         << sched.asap[i] << "..'" << sched.alap[i];
    }
    os << "] serial=" << sched.serial_length
       << " asap=" << sched.asap_length << " list=" << sched.list_length
       << '\n';
  }
  return os.str();
}

}  // namespace camad::synth
