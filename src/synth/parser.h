// Recursive-descent BDL parser.
//
// Grammar (precedence low to high: | ^ & cmp shift addsub muldiv unary):
//   program := "design" ident "{" decl* "begin" stmt* "end" "}"
//   decl    := ("in" | "out" | "var") ident ("," ident)* ";"
//   stmt    := ident ":=" expr ";"
//            | "if" expr "{" stmt* "}" ("else" "{" stmt* "}")?
//            | "while" expr "{" stmt* "}"
//            | "par" "{" ("branch" "{" stmt* "}")+ "}"
//   expr    := ... (C-like binary operators, unary - and !)
#pragma once

#include <string_view>

#include "synth/ast.h"

namespace camad::synth {

/// Parses one BDL design. Throws ParseError with line/column on error.
/// Semantic checks included: unique names, assignment targets must be
/// vars or outs, expression operands must be declared vars/ins (reading
/// an `out` is rejected — output vertices have no readable port).
Program parse_program(std::string_view source);

/// Parses a standalone expression (used by tests).
ExprPtr parse_expression(std::string_view source);

}  // namespace camad::synth
