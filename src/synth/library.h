// Module library: the implementation cost/delay of each operation.
//
// Reconstructs the role of CAMAD's module library. Only *relative*
// numbers drive synthesis decisions; the defaults are plausible gate
// counts and combinational delays (ns) for a late-1980s standard-cell
// process (multiplier ~an order of magnitude above an adder, comparator
// below an adder, register small, mux cheap).
#pragma once

#include <cstdint>

#include "dcf/datapath.h"
#include "dcf/ops.h"

namespace camad::synth {

struct Module {
  double area = 0;   ///< gate equivalents
  double delay = 0;  ///< combinational delay, ns (0 for state elements)
};

class ModuleLibrary {
 public:
  /// Library preloaded with the default entries for every OpCode.
  static ModuleLibrary standard();

  [[nodiscard]] const Module& module_for(dcf::OpCode code) const;
  void set_module(dcf::OpCode code, Module module);

  /// Cost of one n-way multiplexer on a shared input port.
  [[nodiscard]] double mux_area(std::size_t ways) const;
  [[nodiscard]] double mux_delay() const { return mux_delay_; }
  void set_mux(double area_per_way, double delay) {
    mux_area_per_way_ = area_per_way;
    mux_delay_ = delay;
  }

  /// Area of a whole vertex: sum over its output-port modules (a
  /// multi-output comparator pays for each predicate it exposes).
  [[nodiscard]] double vertex_area(const dcf::DataPath& dp,
                                   dcf::VertexId v) const;

 private:
  Module modules_[32];
  double mux_area_per_way_ = 4;
  double mux_delay_ = 2;
};

}  // namespace camad::synth
