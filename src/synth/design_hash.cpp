#include "synth/design_hash.h"

#include <algorithm>
#include <string_view>
#include <vector>

namespace camad::synth {
namespace {

// splitmix64 finalizer: the diffusion step between refinement rounds.
// Fixed constants keep the hash identical across platforms and runs
// (std::hash makes no such promise).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t combine(std::uint64_t h, std::uint64_t v) {
  return mix(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

std::uint64_t hash_string(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return mix(h);
}

// Node-class and edge-type tags. Forward and reverse directions of every
// relation get distinct types so refinement distinguishes producer from
// consumer roles.
enum : std::uint64_t {
  kTagVertex = 0x11,
  kTagPort = 0x22,
  kTagArc = 0x33,
  kTagPlace = 0x44,
  kTagTransition = 0x55,
  kEdgeOwnerToPort = 1,
  kEdgePortToOwner = 2,
  kEdgeSourceToArc = 3,
  kEdgeArcToSource = 4,
  kEdgeArcToTarget = 5,
  kEdgeTargetToArc = 6,
  kEdgePlaceToTransition = 7,
  kEdgeTransitionFromPlace = 8,
  kEdgeTransitionToPlace = 9,
  kEdgePlaceFromTransition = 10,
  kEdgeControlPlaceToArc = 11,
  kEdgeControlArcToPlace = 12,
  kEdgeGuardPortToTransition = 13,
  kEdgeGuardTransitionToPort = 14,
};

struct UnionGraph {
  std::vector<std::uint64_t> labels;
  // Typed adjacency: adjacency[n] lists (edge type, neighbour).
  std::vector<std::vector<std::pair<std::uint64_t, std::uint32_t>>> adjacency;
};

UnionGraph build(const dcf::System& system) {
  const dcf::DataPath& dp = system.datapath();
  const dcf::ControlNet& cn = system.control();
  const petri::Net& net = cn.net();

  const std::size_t nv = dp.vertex_count();
  const std::size_t np = dp.port_count();
  const std::size_t na = dp.arc_count();
  const std::size_t ns = net.place_count();
  const std::size_t nt = net.transition_count();
  const std::size_t total = nv + np + na + ns + nt;

  const auto vertex_node = [&](dcf::VertexId v) {
    return static_cast<std::uint32_t>(v.index());
  };
  const auto port_node = [&](dcf::PortId p) {
    return static_cast<std::uint32_t>(nv + p.index());
  };
  const auto arc_node = [&](dcf::ArcId a) {
    return static_cast<std::uint32_t>(nv + np + a.index());
  };
  const auto place_node = [&](petri::PlaceId p) {
    return static_cast<std::uint32_t>(nv + np + na + p.index());
  };
  const auto transition_node = [&](petri::TransitionId t) {
    return static_cast<std::uint32_t>(nv + np + na + ns + t.index());
  };

  UnionGraph g;
  g.labels.assign(total, 0);
  g.adjacency.resize(total);
  const auto edge = [&](std::uint64_t type, std::uint32_t from,
                        std::uint32_t to) {
    g.adjacency[from].emplace_back(type, to);
  };

  for (const dcf::VertexId v : dp.vertices()) {
    const dcf::VertexKind kind = dp.kind(v);
    std::uint64_t label = combine(kTagVertex, static_cast<std::uint64_t>(kind));
    // Only the environment interface is nominal; internal unit names are
    // bookkeeping and must not split otherwise-isomorphic designs.
    if (kind != dcf::VertexKind::kInternal) {
      label = combine(label, hash_string(dp.name(v)));
    }
    g.labels[vertex_node(v)] = label;

    const auto attach = [&](const std::vector<dcf::PortId>& ports,
                            std::uint64_t side) {
      for (std::size_t i = 0; i < ports.size(); ++i) {
        const dcf::PortId p = ports[i];
        std::uint64_t port_label = combine(kTagPort, side);
        // Operand position is semantics (a - b vs b - a), so it is part
        // of the port label even though ids are not.
        port_label = combine(port_label, static_cast<std::uint64_t>(i));
        if (dp.direction(p) == dcf::PortDir::kOut) {
          const dcf::Operation& op = dp.operation(p);
          port_label =
              combine(port_label, static_cast<std::uint64_t>(op.code));
          port_label =
              combine(port_label, static_cast<std::uint64_t>(op.immediate));
        }
        g.labels[port_node(p)] = port_label;
        edge(kEdgeOwnerToPort, vertex_node(v), port_node(p));
        edge(kEdgePortToOwner, port_node(p), vertex_node(v));
      }
    };
    attach(dp.input_ports(v), 1);
    attach(dp.output_ports(v), 2);
  }

  for (const dcf::ArcId a : dp.arcs()) {
    g.labels[arc_node(a)] = mix(kTagArc);
    edge(kEdgeSourceToArc, port_node(dp.arc_source(a)), arc_node(a));
    edge(kEdgeArcToSource, arc_node(a), port_node(dp.arc_source(a)));
    edge(kEdgeArcToTarget, arc_node(a), port_node(dp.arc_target(a)));
    edge(kEdgeTargetToArc, port_node(dp.arc_target(a)), arc_node(a));
  }

  for (const petri::PlaceId p : net.places()) {
    g.labels[place_node(p)] =
        combine(kTagPlace, static_cast<std::uint64_t>(net.initial_tokens(p)));
    // pre/post store one entry per unit of arc weight, so weighted flow
    // contributes naturally through edge multiplicity.
    for (const petri::TransitionId t : net.post(p)) {
      edge(kEdgePlaceToTransition, place_node(p), transition_node(t));
      edge(kEdgeTransitionFromPlace, transition_node(t), place_node(p));
    }
    for (const petri::TransitionId t : net.pre(p)) {
      edge(kEdgePlaceFromTransition, place_node(p), transition_node(t));
      edge(kEdgeTransitionToPlace, transition_node(t), place_node(p));
    }
    for (const dcf::ArcId a : cn.controlled_arcs(p)) {
      edge(kEdgeControlPlaceToArc, place_node(p), arc_node(a));
      edge(kEdgeControlArcToPlace, arc_node(a), place_node(p));
    }
  }

  for (const petri::TransitionId t : net.transitions()) {
    g.labels[transition_node(t)] = mix(kTagTransition);
    for (const dcf::PortId p : cn.guards(t)) {
      edge(kEdgeGuardPortToTransition, port_node(p), transition_node(t));
      edge(kEdgeGuardTransitionToPort, transition_node(t), port_node(p));
    }
  }
  return g;
}

std::size_t distinct_count(std::vector<std::uint64_t> labels) {
  std::sort(labels.begin(), labels.end());
  return static_cast<std::size_t>(
      std::unique(labels.begin(), labels.end()) - labels.begin());
}

}  // namespace

std::uint64_t design_hash(const dcf::System& system) {
  UnionGraph g = build(system);
  const std::size_t total = g.labels.size();
  if (total == 0) return mix(0);

  // Refine until the label partition stops splitting. The stop rule
  // (distinct-label count, itself renumbering-invariant) bounds rounds by
  // the node count; in practice a handful suffice.
  std::vector<std::uint64_t> next(total);
  std::vector<std::uint64_t> neighbourhood;
  std::size_t distinct = distinct_count(g.labels);
  for (std::size_t round = 0; round < total; ++round) {
    for (std::size_t n = 0; n < total; ++n) {
      neighbourhood.clear();
      for (const auto& [type, nbr] : g.adjacency[n]) {
        neighbourhood.push_back(combine(type, g.labels[nbr]));
      }
      std::sort(neighbourhood.begin(), neighbourhood.end());
      std::uint64_t h = mix(g.labels[n]);
      for (const std::uint64_t v : neighbourhood) h = combine(h, v);
      next[n] = h;
    }
    g.labels.swap(next);
    const std::size_t refined = distinct_count(g.labels);
    if (refined <= distinct) break;
    distinct = refined;
  }

  // Digest: node-class sizes plus the sorted final label multiset.
  const dcf::DataPath& dp = system.datapath();
  const petri::Net& net = system.control().net();
  std::uint64_t h = mix(0x5eed);
  h = combine(h, dp.vertex_count());
  h = combine(h, dp.port_count());
  h = combine(h, dp.arc_count());
  h = combine(h, net.place_count());
  h = combine(h, net.transition_count());
  std::sort(g.labels.begin(), g.labels.end());
  for (const std::uint64_t label : g.labels) h = combine(h, label);
  return h;
}

}  // namespace camad::synth
