// RTL-style structural netlist emission.
//
// The final stage of the synthesis flow: renders a System as the
// register-transfer structure a downstream logic-synthesis tool would
// consume — registers, functional units, input multiplexers (one per
// multi-driven input port, select lines derived from the controlling
// states), and the control FSM described as the Petri net's places,
// transitions and guard expressions.
#pragma once

#include <string>

#include "dcf/system.h"
#include "synth/library.h"

namespace camad::synth {

/// Human/tool-readable netlist text. Deterministic (golden-testable).
std::string emit_netlist(const dcf::System& system, const ModuleLibrary& lib);

}  // namespace camad::synth
