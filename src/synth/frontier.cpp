#include "synth/frontier.h"

#include <algorithm>

namespace camad::synth {

namespace {

bool weakly_dominates(const Metrics& p, double area, double time_ns) {
  return p.area <= area && p.time_ns <= time_ns;
}

}  // namespace

bool ParetoFrontier::insert(FrontierPoint point) {
  for (const FrontierPoint& existing : points_) {
    if (weakly_dominates(existing.metrics, point.metrics.area,
                         point.metrics.time_ns)) {
      return false;
    }
  }
  points_.erase(
      std::remove_if(points_.begin(), points_.end(),
                     [&](const FrontierPoint& existing) {
                       return weakly_dominates(point.metrics,
                                               existing.metrics.area,
                                               existing.metrics.time_ns);
                     }),
      points_.end());
  const auto at = std::lower_bound(
      points_.begin(), points_.end(), point,
      [](const FrontierPoint& a, const FrontierPoint& b) {
        return a.metrics.area < b.metrics.area;
      });
  points_.insert(at, std::move(point));
  return true;
}

bool ParetoFrontier::dominates(double area, double time_ns) const {
  for (const FrontierPoint& p : points_) {
    if (weakly_dominates(p.metrics, area, time_ns)) return true;
  }
  return false;
}

double ParetoFrontier::hypervolume(double ref_area,
                                   double ref_time_ns) const {
  // points_ is area-ascending, hence time strictly descending: sweep
  // left to right, each point contributing the rectangle between its
  // time and the previous (clamped) time level.
  double volume = 0;
  double level = ref_time_ns;
  for (const FrontierPoint& p : points_) {
    if (p.metrics.area >= ref_area) continue;
    if (p.metrics.time_ns >= level) continue;
    volume += (ref_area - p.metrics.area) * (level - p.metrics.time_ns);
    level = p.metrics.time_ns;
  }
  return volume;
}

}  // namespace camad::synth
