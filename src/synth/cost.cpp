#include "synth/cost.h"

#include <algorithm>

#include "graph/algorithms.h"
#include "graph/digraph.h"
#include "sim/batch.h"
#include "sim/simulator.h"
#include "util/error.h"

namespace camad::synth {

AreaReport estimate_area(const dcf::System& system, const ModuleLibrary& lib) {
  const dcf::DataPath& dp = system.datapath();
  AreaReport report;
  for (dcf::VertexId v : dp.vertices()) {
    if (dp.kind(v) != dcf::VertexKind::kInternal) continue;
    double area = 0;
    bool is_reg = false;
    bool is_const = false;
    for (dcf::PortId o : dp.output_ports(v)) {
      const dcf::OpCode code = dp.operation(o).code;
      area += lib.module_for(code).area;
      is_reg |= (code == dcf::OpCode::kReg);
      is_const |= (code == dcf::OpCode::kConst);
    }
    if (is_reg) {
      report.registers += area;
    } else if (is_const) {
      report.constants += area;
    } else {
      report.functional_units += area;
    }
  }
  // Steering: an input port with n pending arcs needs an n-way mux.
  for (dcf::VertexId v : dp.vertices()) {
    for (dcf::PortId in : dp.input_ports(v)) {
      report.steering += lib.mux_area(dp.arcs_into(in).size());
    }
  }
  return report;
}

TimingReport estimate_cycle_time(const dcf::System& system,
                                 const ModuleLibrary& lib) {
  const dcf::DataPath& dp = system.datapath();
  TimingReport report;
  const double scale = 100.0;  // fixed-point ns for integer longest-path

  for (petri::PlaceId s : system.control().net().places()) {
    // Port-level DAG of the state's active subgraph, node weight = module
    // delay of the producing operation; mux delay on multi-driven inputs.
    graph::Digraph g(dp.port_count());
    std::vector<std::int64_t> weight(dp.port_count(), 0);
    std::vector<bool> active_vertex(dp.vertex_count(), false);
    for (dcf::ArcId a : system.control().controlled_arcs(s)) {
      g.add_edge(graph::NodeId(dp.arc_source(a).value()),
                 graph::NodeId(dp.arc_target(a).value()));
      active_vertex[dp.arc_source_vertex(a).index()] = true;
      active_vertex[dp.arc_target_vertex(a).index()] = true;
    }
    for (dcf::VertexId v : dp.vertices()) {
      if (!active_vertex[v.index()]) continue;  // unit idle in this state
      for (dcf::PortId o : dp.output_ports(v)) {
        const dcf::Operation& op = dp.operation(o);
        weight[o.index()] = static_cast<std::int64_t>(
            lib.module_for(op.code).delay * scale);
        if (dcf::op_is_sequential(op.code)) continue;
        const int arity = dcf::op_arity(op.code);
        const auto& ins = dp.input_ports(v);
        for (int k = 0; k < arity; ++k) {
          g.add_edge(graph::NodeId(ins[static_cast<std::size_t>(k)].value()),
                     graph::NodeId(o.value()));
        }
      }
      for (dcf::PortId in : dp.input_ports(v)) {
        if (dp.arcs_into(in).size() > 1) {
          weight[in.index()] =
              static_cast<std::int64_t>(lib.mux_delay() * scale);
        }
      }
    }
    std::int64_t best;
    try {
      best = graph::longest_path(g, weight).best;
    } catch (const ModelError&) {
      // Active combinational loop (improper design): treat as unbounded.
      best = std::numeric_limits<std::int64_t>::max() / 2;
    }
    const double path_ns = static_cast<double>(best) / scale;
    if (path_ns > report.cycle_time) {
      report.cycle_time = path_ns;
      report.critical_state = s;
    }
  }
  return report;
}

PerformanceReport measure_performance(const dcf::System& system,
                                      const ModuleLibrary& lib,
                                      const MeasureOptions& options) {
  PerformanceReport report;
  report.cycle_time = estimate_cycle_time(system, lib).cycle_time;

  sim::SimOptions sim_options;
  sim_options.max_cycles = options.max_cycles;
  sim_options.record_cycles = false;

  std::vector<sim::SimResult> results;
  if (options.share_engine) {
    // One engine for all environments: configuration plans compile once
    // per measurement. Serial on purpose — the optimizer parallelizes
    // across *candidates*, so nesting another pool here would
    // oversubscribe.
    std::vector<sim::BatchRun> runs;
    runs.reserve(options.environments);
    for (std::size_t k = 0; k < options.environments; ++k) {
      runs.push_back({sim::Environment::random_for(
                          system, options.seed + k, options.stream_length,
                          options.value_lo, options.value_hi),
                      sim_options});
    }
    results = sim::simulate_batch(system, runs, /*threads=*/1);
  } else {
    for (std::size_t k = 0; k < options.environments; ++k) {
      sim::Environment env = sim::Environment::random_for(
          system, options.seed + k, options.stream_length, options.value_lo,
          options.value_hi);
      results.push_back(sim::simulate(system, env, sim_options));
    }
  }

  double total = 0;
  for (const sim::SimResult& result : results) {
    report.all_terminated &= result.terminated;
    report.max_cycles = std::max(report.max_cycles, result.cycles);
    report.sim_stats += result.stats;
    total += static_cast<double>(result.cycles);
  }
  report.mean_cycles =
      options.environments == 0
          ? 0
          : total / static_cast<double>(options.environments);
  return report;
}

}  // namespace camad::synth
