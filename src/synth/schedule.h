// Scheduling bound analysis: ASAP / ALAP / resource-constrained list
// scheduling over the dependence DAG of each linear control segment.
//
// These are *analyses*, not transformations: they predict the schedule
// length the transformation engine can reach —
//   * ASAP depth       = lower bound with unlimited hardware (what
//                        `parallelize` achieves when nothing conflicts);
//   * list schedule    = length under a resource budget (k units per
//                        operation class), predicting the cycle cost of
//                        merging down to that budget before the mergers
//                        are actually applied;
//   * ALAP + slack     = which states can move without stretching the
//                        schedule (merge candidates with zero cost).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dcf/system.h"
#include "semantics/dependence.h"
#include "transform/parallelize.h"

namespace camad::synth {

/// FU budget per operation code; absent codes are unlimited.
using ResourceBudget = std::map<dcf::OpCode, std::size_t>;

struct SegmentSchedule {
  std::vector<petri::PlaceId> states;
  std::vector<std::size_t> asap;   ///< earliest step per state
  std::vector<std::size_t> alap;   ///< latest step (within asap length)
  std::vector<std::size_t> slack;  ///< alap - asap
  std::size_t serial_length = 0;   ///< = states.size()
  std::size_t asap_length = 0;     ///< critical path of the DAG
  std::size_t list_length = 0;     ///< under the resource budget
};

struct ScheduleAnalysis {
  std::vector<SegmentSchedule> segments;
  /// Sums over segments (states outside segments count 1 step each are
  /// not included — segment-relative comparison only).
  std::size_t serial_total = 0;
  std::size_t asap_total = 0;
  std::size_t list_total = 0;

  [[nodiscard]] std::string to_string(const dcf::System& system) const;
};

struct ScheduleOptions {
  semantics::DependenceOptions dependence;
  /// Order states whose association sets overlap, as parallelize does.
  bool respect_resource_conflicts = true;
  ResourceBudget budget;  ///< empty = unlimited
};

/// Analyzes every linear segment of the system.
ScheduleAnalysis analyze_schedules(const dcf::System& system,
                                   const ScheduleOptions& options = {});

}  // namespace camad::synth
