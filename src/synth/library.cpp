#include "synth/library.h"

#include "util/error.h"

namespace camad::synth {

ModuleLibrary ModuleLibrary::standard() {
  using dcf::OpCode;
  ModuleLibrary lib;
  // area (gate equivalents), delay (ns) — relative magnitudes matter.
  lib.set_module(OpCode::kAdd, {120, 18});
  lib.set_module(OpCode::kSub, {130, 19});
  lib.set_module(OpCode::kMul, {1400, 60});
  lib.set_module(OpCode::kDiv, {2200, 110});
  lib.set_module(OpCode::kMod, {2200, 110});
  lib.set_module(OpCode::kNeg, {60, 8});
  lib.set_module(OpCode::kAnd, {16, 2});
  lib.set_module(OpCode::kOr, {16, 2});
  lib.set_module(OpCode::kXor, {24, 3});
  lib.set_module(OpCode::kNot, {4, 1});
  lib.set_module(OpCode::kShl, {90, 10});
  lib.set_module(OpCode::kShr, {90, 10});
  lib.set_module(OpCode::kEq, {50, 9});
  lib.set_module(OpCode::kNe, {50, 9});
  lib.set_module(OpCode::kLt, {70, 12});
  lib.set_module(OpCode::kLe, {70, 12});
  lib.set_module(OpCode::kGt, {70, 12});
  lib.set_module(OpCode::kGe, {70, 12});
  lib.set_module(OpCode::kMux, {12, 2});
  lib.set_module(OpCode::kPass, {0, 0});
  lib.set_module(OpCode::kConst, {8, 0});
  lib.set_module(OpCode::kReg, {64, 3});   // delay = clock-to-q
  lib.set_module(OpCode::kInput, {0, 0});  // pads are free here
  return lib;
}

const Module& ModuleLibrary::module_for(dcf::OpCode code) const {
  return modules_[static_cast<std::size_t>(code)];
}

void ModuleLibrary::set_module(dcf::OpCode code, Module module) {
  modules_[static_cast<std::size_t>(code)] = module;
}

double ModuleLibrary::mux_area(std::size_t ways) const {
  if (ways <= 1) return 0;
  return static_cast<double>(ways - 1) * mux_area_per_way_;
}

double ModuleLibrary::vertex_area(const dcf::DataPath& dp,
                                  dcf::VertexId v) const {
  if (dp.kind(v) != dcf::VertexKind::kInternal) return 0;
  double area = 0;
  for (dcf::PortId o : dp.output_ports(v)) {
    area += module_for(dp.operation(o).code).area;
  }
  return area;
}

}  // namespace camad::synth
