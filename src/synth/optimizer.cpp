#include "synth/optimizer.h"

#include <limits>
#include <optional>
#include <utility>

#include "obs/trace.h"
#include "semantics/equivalence.h"
#include "sim/batch.h"
#include "transform/chain.h"
#include "transform/cleanup.h"
#include "transform/merge.h"
#include "transform/parallelize.h"
#include "transform/regshare.h"
#include "util/error.h"
#include "util/json.h"
#include "util/rng.h"

namespace camad::synth {
namespace {

double objective_of(const Metrics& m, const Metrics& baseline, double lambda) {
  const double area_norm = baseline.area > 0 ? m.area / baseline.area : 1.0;
  const double time_norm =
      baseline.time_ns > 0 ? m.time_ns / baseline.time_ns : 1.0;
  return lambda * area_norm + (1.0 - lambda) * time_norm;
}

/// One evaluated search candidate: a serial master, its derived
/// schedule, and the schedule's measured cost.
struct Candidate {
  dcf::System master;
  dcf::System scheduled;
  Metrics metrics;
  double objective = std::numeric_limits<double>::infinity();
  sim::SimStats sim_stats;
};

/// Marks an accepted move on the trace timeline (no-op when disabled).
void trace_accept(const std::string& description, double objective) {
  obs::TraceSession* session = obs::TraceSession::active();
  if (session == nullptr) return;
  session->instant("optimize.accept",
                   "{\"move\":" + json_quote(description) +
                       ",\"objective\":" + json_number(objective) + "}");
}

}  // namespace

Metrics evaluate(const dcf::System& system, const ModuleLibrary& lib,
                 const MeasureOptions& options, sim::SimStats* sim_stats) {
  Metrics m;
  m.area = estimate_area(system, lib).total();
  const PerformanceReport perf = measure_performance(system, lib, options);
  if (sim_stats != nullptr) *sim_stats += perf.sim_stats;
  m.mean_cycles = perf.mean_cycles;
  m.cycle_time = perf.cycle_time;
  m.time_ns = perf.mean_time_ns();
  return m;
}

dcf::System derive_schedule(const dcf::System& master) {
  return transform::cleanup_control(transform::parallelize(master));
}

dcf::System derive_schedule(const dcf::System& master,
                            const semantics::AnalysisCache& cache) {
  return transform::cleanup_control(transform::parallelize(master, cache));
}

OptimizerResult optimize(const dcf::System& serial, const ModuleLibrary& lib,
                         const OptimizerOptions& options) {
  const obs::ObsSpan optimize_span("optimize");
  dcf::System master = serial;
  std::optional<semantics::AnalysisCache> cache;
  if (options.use_analysis_cache) cache.emplace(master);

  OptimizerResult result;
  dcf::System best =
      cache ? derive_schedule(master, *cache) : derive_schedule(master);
  const Metrics baseline =
      evaluate(best, lib, options.measure, &result.sim_stats);
  ++result.candidates_evaluated;

  result.best = best;
  result.serial_master = master;
  result.initial = baseline;
  result.final = baseline;
  double best_objective = objective_of(baseline, baseline,
                                       options.area_weight);
  result.steps.push_back(
      {"initial (no mergers, parallelized)", baseline, best_objective});

  for (std::size_t step = 0; step < options.max_steps; ++step) {
    const obs::ObsSpan sweep_span("optimize.sweep", [&] {
      return "{\"step\":" + std::to_string(step) + "}";
    });
    const auto pairs = cache ? transform::mergeable_pairs(master, *cache)
                             : transform::mergeable_pairs(master);
    if (pairs.empty()) break;

    // Every worker reads order/concurrency through the shared cache —
    // force them now so first touch doesn't serialize the fan-out.
    if (cache) cache->warm_control();

    std::vector<Candidate> candidates(pairs.size());
    sim::parallel_jobs(
        pairs.size(), options.eval_threads,
        [&](std::size_t /*worker*/, std::size_t i) {
          const obs::ObsSpan candidate_span("optimize.candidate", [&] {
            return "{\"pair\":" + std::to_string(i) + "}";
          });
          Candidate& c = candidates[i];
          c.master = cache ? transform::merge_vertices(
                                 master, pairs[i].first, pairs[i].second,
                                 *cache)
                           : transform::merge_vertices(
                                 master, pairs[i].first, pairs[i].second);
          // The merged system is a different net object per candidate:
          // its schedule cannot reuse the master's cache.
          c.scheduled = derive_schedule(c.master);
          c.metrics = evaluate(c.scheduled, lib, options.measure,
                               &c.sim_stats);
          c.objective = objective_of(c.metrics, baseline,
                                     options.area_weight);
        });
    for (const Candidate& c : candidates) result.sim_stats += c.sim_stats;
    result.candidates_evaluated += candidates.size();

    // Deterministic selection: minimum objective, earliest pair index on
    // ties — exactly the serial sweep's acceptance rule, so thread count
    // never changes the search trajectory.
    std::size_t winner = pairs.size();
    double winner_objective = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i].objective < winner_objective) {
        winner_objective = candidates[i].objective;
        winner = i;
      }
    }

    if (winner == pairs.size() ||
        winner_objective >= best_objective - 1e-12) {
      break;  // no improving merger
    }
    Candidate& accepted = candidates[winner];

    if (options.verify_steps) {
      const semantics::EquivalenceVerdict verdict =
          semantics::differential_equivalence(best, accepted.scheduled);
      if (!verdict.holds) {
        throw TransformError("optimizer step failed verification: " +
                             verdict.why);
      }
    }

    const auto& dp = master.datapath();
    result.steps.push_back(
        {"merge " + dp.name(pairs[winner].first) + " into " +
             dp.name(pairs[winner].second),
         accepted.metrics, accepted.objective});
    trace_accept(result.steps.back().description, accepted.objective);
    master = std::move(accepted.master);
    if (cache) {
      result.analysis_stats += cache->stats();
      cache = cache->successor(master, transform::merge_preserved_analyses());
    }
    best = std::move(accepted.scheduled);
    best_objective = winner_objective;
    ++result.merges_applied;
  }

  // Post-passes: register sharing and state chaining, each kept only if
  // it improves the objective (both change the serial master, so the
  // schedule is re-derived). All candidates derive from the post-merge
  // master; evaluation fans out, acceptance stays serial and ordered.
  struct PostPass {
    const char* name;
    dcf::System master;
  };
  std::vector<PostPass> post;
  if (options.try_register_sharing) {
    post.push_back({"share registers",
                    cache ? transform::share_registers(master, *cache)
                          : transform::share_registers(master)});
  }
  if (options.try_chaining) {
    post.push_back({"chain states",
                    cache ? transform::chain_states(master, *cache)
                          : transform::chain_states(master)});
    if (options.try_register_sharing) {
      const dcf::System& shared = post.front().master;
      if (cache) {
        const semantics::AnalysisCache shared_cache = cache->successor(
            shared, transform::regshare_preserved_analyses());
        post.push_back({"share registers + chain states",
                        transform::chain_states(shared, shared_cache)});
        result.analysis_stats += shared_cache.stats();
      } else {
        post.push_back({"share registers + chain states",
                        transform::chain_states(shared)});
      }
    }
  }

  std::vector<Candidate> post_eval(post.size());
  sim::parallel_jobs(post.size(), options.eval_threads,
                     [&](std::size_t /*worker*/, std::size_t i) {
                       const obs::ObsSpan post_span("optimize.post.",
                                                    post[i].name);
                       Candidate& c = post_eval[i];
                       c.scheduled = derive_schedule(post[i].master);
                       c.metrics = evaluate(c.scheduled, lib,
                                            options.measure, &c.sim_stats);
                       c.objective = objective_of(c.metrics, baseline,
                                                  options.area_weight);
                     });
  for (const Candidate& c : post_eval) result.sim_stats += c.sim_stats;
  result.candidates_evaluated += post_eval.size();
  for (std::size_t i = 0; i < post.size(); ++i) {
    if (post_eval[i].objective < best_objective - 1e-12) {
      if (options.verify_steps) {
        const semantics::EquivalenceVerdict verdict =
            semantics::differential_equivalence(best,
                                                post_eval[i].scheduled);
        if (!verdict.holds) {
          throw TransformError(std::string("post-pass '") + post[i].name +
                               "' failed verification: " + verdict.why);
        }
      }
      result.steps.push_back(
          {post[i].name, post_eval[i].metrics, post_eval[i].objective});
      trace_accept(result.steps.back().description, post_eval[i].objective);
      master = std::move(post[i].master);
      best = std::move(post_eval[i].scheduled);
      best_objective = post_eval[i].objective;
    }
  }

  if (cache) result.analysis_stats += cache->stats();
  result.best = best;
  result.serial_master = master;
  result.final = result.steps.back().metrics;
  return result;
}

OptimizerResult optimize_stochastic(const dcf::System& serial,
                                    const ModuleLibrary& lib,
                                    const StochasticOptions& options) {
  const obs::ObsSpan optimize_span("optimize.stochastic");
  sim::SimStats sim_total;
  semantics::AnalysisCacheStats analysis_total;
  std::size_t evaluations = 0;
  std::optional<semantics::AnalysisCache> base;
  if (options.base.use_analysis_cache) base.emplace(serial);

  const dcf::System initial_scheduled =
      base ? derive_schedule(serial, *base) : derive_schedule(serial);
  const Metrics baseline =
      evaluate(initial_scheduled, lib, options.base.measure, &sim_total);
  ++evaluations;
  const double initial_objective =
      objective_of(baseline, baseline, options.base.area_weight);
  Rng rng(options.seed);

  OptimizerResult best_run;
  double best_objective = std::numeric_limits<double>::infinity();

  for (std::size_t restart = 0; restart < options.restarts; ++restart) {
    dcf::System master = serial;
    // The restart's master is a fresh copy of the unchanged serial
    // design, so every analysis of `base` is valid for it.
    std::optional<semantics::AnalysisCache> cache;
    if (base) {
      cache = base->successor(master, semantics::PreservedAnalyses::all());
    }
    dcf::System scheduled = initial_scheduled;
    double objective = initial_objective;
    OptimizerResult run;
    run.best = scheduled;
    run.serial_master = master;
    run.initial = baseline;
    run.final = baseline;

    for (std::size_t step = 0; step < options.base.max_steps; ++step) {
      auto pairs = cache ? transform::mergeable_pairs(master, *cache)
                         : transform::mergeable_pairs(master);
      if (pairs.empty()) break;
      for (std::size_t i = pairs.size(); i > 1; --i) {
        std::swap(pairs[i - 1], pairs[rng.below(i)]);
      }
      // First *improving* merger in the shuffled order.
      bool improved = false;
      for (const auto& [vi, vj] : pairs) {
        dcf::System merged =
            cache ? transform::merge_vertices(master, vi, vj, *cache)
                  : transform::merge_vertices(master, vi, vj);
        dcf::System candidate = derive_schedule(merged);
        const Metrics metrics =
            evaluate(candidate, lib, options.base.measure, &sim_total);
        ++evaluations;
        const double candidate_objective =
            objective_of(metrics, baseline, options.base.area_weight);
        if (candidate_objective < objective - 1e-12) {
          master = std::move(merged);
          if (cache) {
            analysis_total += cache->stats();
            cache = cache->successor(
                master, transform::merge_preserved_analyses());
          }
          scheduled = std::move(candidate);
          objective = candidate_objective;
          ++run.merges_applied;
          run.steps.push_back({"stochastic merge", metrics,
                               candidate_objective});
          improved = true;
          break;
        }
      }
      if (!improved) break;
    }
    if (cache) analysis_total += cache->stats();

    if (objective < best_objective) {
      best_objective = objective;
      run.best = scheduled;
      run.serial_master = master;
      run.final = run.steps.empty() ? baseline : run.steps.back().metrics;
      best_run = std::move(run);
    }
  }
  if (best_run.steps.empty()) {
    best_run.steps.push_back({"initial (stochastic)", baseline,
                              initial_objective});
    best_run.final = baseline;
  }
  if (base) analysis_total += base->stats();
  // Search-wide totals, not just the winning restart's share.
  best_run.sim_stats = sim_total;
  best_run.analysis_stats = analysis_total;
  best_run.candidates_evaluated = evaluations;
  return best_run;
}

}  // namespace camad::synth
