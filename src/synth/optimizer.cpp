#include "synth/optimizer.h"

#include <limits>

#include "util/rng.h"

#include "semantics/equivalence.h"
#include "transform/chain.h"
#include "transform/cleanup.h"
#include "transform/merge.h"
#include "transform/regshare.h"
#include "transform/parallelize.h"
#include "util/error.h"

namespace camad::synth {
namespace {

double objective_of(const Metrics& m, const Metrics& baseline, double lambda) {
  const double area_norm = baseline.area > 0 ? m.area / baseline.area : 1.0;
  const double time_norm =
      baseline.time_ns > 0 ? m.time_ns / baseline.time_ns : 1.0;
  return lambda * area_norm + (1.0 - lambda) * time_norm;
}

}  // namespace

Metrics evaluate(const dcf::System& system, const ModuleLibrary& lib,
                 const MeasureOptions& options) {
  Metrics m;
  m.area = estimate_area(system, lib).total();
  const PerformanceReport perf = measure_performance(system, lib, options);
  m.mean_cycles = perf.mean_cycles;
  m.cycle_time = perf.cycle_time;
  m.time_ns = perf.mean_time_ns();
  return m;
}

OptimizerResult optimize(const dcf::System& serial, const ModuleLibrary& lib,
                         const OptimizerOptions& options) {
  auto schedule = [](const dcf::System& master) {
    // Derive the parallel schedule, then elide the pass-through
    // control-only states compilation and fork/join realization leave.
    return transform::cleanup_control(transform::parallelize(master));
  };

  dcf::System master = serial;
  dcf::System best = schedule(master);
  const Metrics baseline = evaluate(best, lib, options.measure);

  OptimizerResult result{best, master, baseline, baseline, {}, 0};
  double best_objective = objective_of(baseline, baseline,
                                       options.area_weight);
  result.steps.push_back(
      {"initial (no mergers, parallelized)", baseline, best_objective});

  for (std::size_t step = 0; step < options.max_steps; ++step) {
    const auto pairs = transform::mergeable_pairs(master);
    if (pairs.empty()) break;

    double candidate_best = std::numeric_limits<double>::infinity();
    std::size_t candidate_index = pairs.size();
    dcf::System candidate_master;
    dcf::System candidate_scheduled;
    Metrics candidate_metrics;

    for (std::size_t i = 0; i < pairs.size(); ++i) {
      dcf::System merged =
          transform::merge_vertices(master, pairs[i].first, pairs[i].second);
      dcf::System scheduled = schedule(merged);
      const Metrics metrics = evaluate(scheduled, lib, options.measure);
      const double objective =
          objective_of(metrics, baseline, options.area_weight);
      if (objective < candidate_best) {
        candidate_best = objective;
        candidate_index = i;
        candidate_master = std::move(merged);
        candidate_scheduled = std::move(scheduled);
        candidate_metrics = metrics;
      }
    }

    if (candidate_index == pairs.size() ||
        candidate_best >= best_objective - 1e-12) {
      break;  // no improving merger
    }

    if (options.verify_steps) {
      const semantics::EquivalenceVerdict verdict =
          semantics::differential_equivalence(best, candidate_scheduled);
      if (!verdict.holds) {
        throw TransformError("optimizer step failed verification: " +
                             verdict.why);
      }
    }

    const auto& dp = master.datapath();
    result.steps.push_back(
        {"merge " + dp.name(pairs[candidate_index].first) + " into " +
             dp.name(pairs[candidate_index].second),
         candidate_metrics, candidate_best});
    master = std::move(candidate_master);
    best = std::move(candidate_scheduled);
    best_objective = candidate_best;
    ++result.merges_applied;
  }

  // Post-passes: register sharing and state chaining, each kept only if
  // it improves the objective (both change the serial master, so the
  // schedule is re-derived).
  struct PostPass {
    const char* name;
    dcf::System master;
  };
  std::vector<PostPass> candidates;
  if (options.try_register_sharing) {
    candidates.push_back({"share registers",
                          transform::share_registers(master)});
  }
  if (options.try_chaining) {
    candidates.push_back({"chain states", transform::chain_states(master)});
    if (options.try_register_sharing) {
      candidates.push_back(
          {"share registers + chain states",
           transform::chain_states(transform::share_registers(master))});
    }
  }
  for (PostPass& pass : candidates) {
    dcf::System scheduled = schedule(pass.master);
    const Metrics metrics = evaluate(scheduled, lib, options.measure);
    const double objective =
        objective_of(metrics, baseline, options.area_weight);
    if (objective < best_objective - 1e-12) {
      if (options.verify_steps) {
        const semantics::EquivalenceVerdict verdict =
            semantics::differential_equivalence(best, scheduled);
        if (!verdict.holds) {
          throw TransformError(std::string("post-pass '") + pass.name +
                               "' failed verification: " + verdict.why);
        }
      }
      result.steps.push_back({pass.name, metrics, objective});
      master = std::move(pass.master);
      best = std::move(scheduled);
      best_objective = objective;
    }
  }

  result.best = best;
  result.serial_master = master;
  result.final = result.steps.back().metrics;
  return result;
}

OptimizerResult optimize_stochastic(const dcf::System& serial,
                                    const ModuleLibrary& lib,
                                    const StochasticOptions& options) {
  auto schedule = [](const dcf::System& master) {
    return transform::cleanup_control(transform::parallelize(master));
  };

  const Metrics baseline =
      evaluate(schedule(serial), lib, options.base.measure);
  Rng rng(options.seed);

  OptimizerResult best_run;
  double best_objective = std::numeric_limits<double>::infinity();

  for (std::size_t restart = 0; restart < options.restarts; ++restart) {
    dcf::System master = serial;
    dcf::System scheduled = schedule(master);
    double objective = objective_of(
        evaluate(scheduled, lib, options.base.measure), baseline,
        options.base.area_weight);
    OptimizerResult run{scheduled, master, baseline, baseline, {}, 0};

    for (std::size_t step = 0; step < options.base.max_steps; ++step) {
      auto pairs = transform::mergeable_pairs(master);
      if (pairs.empty()) break;
      for (std::size_t i = pairs.size(); i > 1; --i) {
        std::swap(pairs[i - 1], pairs[rng.below(i)]);
      }
      // First *improving* merger in the shuffled order.
      bool improved = false;
      for (const auto& [vi, vj] : pairs) {
        dcf::System merged = transform::merge_vertices(master, vi, vj);
        dcf::System candidate = schedule(merged);
        const Metrics metrics =
            evaluate(candidate, lib, options.base.measure);
        const double candidate_objective =
            objective_of(metrics, baseline, options.base.area_weight);
        if (candidate_objective < objective - 1e-12) {
          master = std::move(merged);
          scheduled = std::move(candidate);
          objective = candidate_objective;
          ++run.merges_applied;
          run.steps.push_back({"stochastic merge", metrics,
                               candidate_objective});
          improved = true;
          break;
        }
      }
      if (!improved) break;
    }

    if (objective < best_objective) {
      best_objective = objective;
      run.best = scheduled;
      run.serial_master = master;
      run.final = run.steps.empty() ? baseline : run.steps.back().metrics;
      best_run = std::move(run);
    }
  }
  if (best_run.steps.empty()) {
    best_run.steps.push_back({"initial (stochastic)", baseline,
                              objective_of(baseline, baseline,
                                           options.base.area_weight)});
    best_run.final = baseline;
  }
  return best_run;
}

}  // namespace camad::synth
