#include "synth/optimizer.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "dcf/io.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "semantics/equivalence.h"
#include "serve/budget.h"
#include "sim/batch.h"
#include "synth/design_hash.h"
#include "transform/chain.h"
#include "transform/cleanup.h"
#include "transform/merge.h"
#include "transform/parallelize.h"
#include "transform/regshare.h"
#include "transform/split.h"
#include "util/error.h"
#include "util/json.h"
#include "util/rng.h"

namespace camad::synth {
namespace {

double objective_of(const Metrics& m, const Metrics& baseline, double lambda) {
  const double area_norm = baseline.area > 0 ? m.area / baseline.area : 1.0;
  const double time_norm =
      baseline.time_ns > 0 ? m.time_ns / baseline.time_ns : 1.0;
  return lambda * area_norm + (1.0 - lambda) * time_norm;
}

/// One evaluated search candidate: a serial master, its derived
/// schedule, and the schedule's measured cost.
struct Candidate {
  dcf::System master;
  dcf::System scheduled;
  Metrics metrics;
  double objective = std::numeric_limits<double>::infinity();
  sim::SimStats sim_stats;
};

/// Marks an accepted move on the trace timeline (no-op when disabled).
void trace_accept(const std::string& description, double objective) {
  obs::TraceSession* session = obs::TraceSession::active();
  if (session == nullptr) return;
  session->instant("optimize.accept",
                   "{\"move\":" + json_quote(description) +
                       ",\"objective\":" + json_number(objective) + "}");
}

}  // namespace

Metrics evaluate(const dcf::System& system, const ModuleLibrary& lib,
                 const MeasureOptions& options, sim::SimStats* sim_stats) {
  Metrics m;
  m.area = estimate_area(system, lib).total();
  const PerformanceReport perf = measure_performance(system, lib, options);
  if (sim_stats != nullptr) *sim_stats += perf.sim_stats;
  m.mean_cycles = perf.mean_cycles;
  m.cycle_time = perf.cycle_time;
  m.time_ns = perf.mean_time_ns();
  return m;
}

dcf::System derive_schedule(const dcf::System& master) {
  return transform::cleanup_control(transform::parallelize(master));
}

dcf::System derive_schedule(const dcf::System& master,
                            const semantics::AnalysisCache& cache) {
  return transform::cleanup_control(transform::parallelize(master, cache));
}

OptimizerResult optimize(const dcf::System& serial, const ModuleLibrary& lib,
                         const OptimizerOptions& options) {
  const obs::ObsSpan optimize_span("optimize");
  dcf::System master = serial;
  std::optional<semantics::AnalysisCache> cache;
  if (options.use_analysis_cache) cache.emplace(master);

  OptimizerResult result;
  dcf::System best =
      cache ? derive_schedule(master, *cache) : derive_schedule(master);
  const Metrics baseline =
      evaluate(best, lib, options.measure, &result.sim_stats);
  ++result.candidates_evaluated;

  result.best = best;
  result.serial_master = master;
  result.initial = baseline;
  result.final = baseline;
  double best_objective = objective_of(baseline, baseline,
                                       options.area_weight);
  result.steps.push_back(
      {"initial (no mergers, parallelized)", baseline, best_objective});

  for (std::size_t step = 0; step < options.max_steps; ++step) {
    const obs::ObsSpan sweep_span("optimize.sweep", [&] {
      return "{\"step\":" + std::to_string(step) + "}";
    });
    const auto pairs = cache ? transform::mergeable_pairs(master, *cache)
                             : transform::mergeable_pairs(master);
    if (pairs.empty()) break;

    // Every worker reads order/concurrency through the shared cache —
    // force them now so first touch doesn't serialize the fan-out.
    if (cache) cache->warm_control();

    std::vector<Candidate> candidates(pairs.size());
    sim::parallel_jobs(
        pairs.size(), options.eval_threads,
        [&](std::size_t /*worker*/, std::size_t i) {
          const obs::ObsSpan candidate_span("optimize.candidate", [&] {
            return "{\"pair\":" + std::to_string(i) + "}";
          });
          Candidate& c = candidates[i];
          c.master = cache ? transform::merge_vertices(
                                 master, pairs[i].first, pairs[i].second,
                                 *cache)
                           : transform::merge_vertices(
                                 master, pairs[i].first, pairs[i].second);
          // The merged system is a different net object per candidate:
          // its schedule cannot reuse the master's cache.
          c.scheduled = derive_schedule(c.master);
          c.metrics = evaluate(c.scheduled, lib, options.measure,
                               &c.sim_stats);
          c.objective = objective_of(c.metrics, baseline,
                                     options.area_weight);
        });
    for (const Candidate& c : candidates) result.sim_stats += c.sim_stats;
    result.candidates_evaluated += candidates.size();

    // Deterministic selection: minimum objective, earliest pair index on
    // ties — exactly the serial sweep's acceptance rule, so thread count
    // never changes the search trajectory.
    std::size_t winner = pairs.size();
    double winner_objective = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i].objective < winner_objective) {
        winner_objective = candidates[i].objective;
        winner = i;
      }
    }

    if (winner == pairs.size() ||
        winner_objective >= best_objective - 1e-12) {
      break;  // no improving merger
    }
    Candidate& accepted = candidates[winner];

    if (options.verify_steps) {
      const semantics::EquivalenceVerdict verdict =
          semantics::differential_equivalence(best, accepted.scheduled);
      if (!verdict.holds) {
        throw TransformError("optimizer step failed verification: " +
                             verdict.why);
      }
    }

    const auto& dp = master.datapath();
    result.steps.push_back(
        {"merge " + dp.name(pairs[winner].first) + " into " +
             dp.name(pairs[winner].second),
         accepted.metrics, accepted.objective});
    trace_accept(result.steps.back().description, accepted.objective);
    master = std::move(accepted.master);
    if (cache) {
      result.analysis_stats += cache->stats();
      cache = cache->successor(master, transform::merge_preserved_analyses());
    }
    best = std::move(accepted.scheduled);
    best_objective = winner_objective;
    ++result.merges_applied;
  }

  // Post-passes: register sharing and state chaining, each kept only if
  // it improves the objective (both change the serial master, so the
  // schedule is re-derived). All candidates derive from the post-merge
  // master; evaluation fans out, acceptance stays serial and ordered.
  struct PostPass {
    const char* name;
    dcf::System master;
  };
  std::vector<PostPass> post;
  if (options.try_register_sharing) {
    post.push_back({"share registers",
                    cache ? transform::share_registers(master, *cache)
                          : transform::share_registers(master)});
  }
  if (options.try_chaining) {
    post.push_back({"chain states",
                    cache ? transform::chain_states(master, *cache)
                          : transform::chain_states(master)});
    if (options.try_register_sharing) {
      const dcf::System& shared = post.front().master;
      if (cache) {
        const semantics::AnalysisCache shared_cache = cache->successor(
            shared, transform::regshare_preserved_analyses());
        post.push_back({"share registers + chain states",
                        transform::chain_states(shared, shared_cache)});
        result.analysis_stats += shared_cache.stats();
      } else {
        post.push_back({"share registers + chain states",
                        transform::chain_states(shared)});
      }
    }
  }

  std::vector<Candidate> post_eval(post.size());
  sim::parallel_jobs(post.size(), options.eval_threads,
                     [&](std::size_t /*worker*/, std::size_t i) {
                       const obs::ObsSpan post_span("optimize.post.",
                                                    post[i].name);
                       Candidate& c = post_eval[i];
                       c.scheduled = derive_schedule(post[i].master);
                       c.metrics = evaluate(c.scheduled, lib,
                                            options.measure, &c.sim_stats);
                       c.objective = objective_of(c.metrics, baseline,
                                                  options.area_weight);
                     });
  for (const Candidate& c : post_eval) result.sim_stats += c.sim_stats;
  result.candidates_evaluated += post_eval.size();
  for (std::size_t i = 0; i < post.size(); ++i) {
    if (post_eval[i].objective < best_objective - 1e-12) {
      if (options.verify_steps) {
        const semantics::EquivalenceVerdict verdict =
            semantics::differential_equivalence(best,
                                                post_eval[i].scheduled);
        if (!verdict.holds) {
          throw TransformError(std::string("post-pass '") + post[i].name +
                               "' failed verification: " + verdict.why);
        }
      }
      result.steps.push_back(
          {post[i].name, post_eval[i].metrics, post_eval[i].objective});
      trace_accept(result.steps.back().description, post_eval[i].objective);
      master = std::move(post[i].master);
      best = std::move(post_eval[i].scheduled);
      best_objective = post_eval[i].objective;
    }
  }

  if (cache) result.analysis_stats += cache->stats();
  result.best = best;
  result.serial_master = master;
  result.final = result.steps.back().metrics;
  return result;
}

OptimizerResult optimize_stochastic(const dcf::System& serial,
                                    const ModuleLibrary& lib,
                                    const StochasticOptions& options) {
  const obs::ObsSpan optimize_span("optimize.stochastic");
  sim::SimStats sim_total;
  semantics::AnalysisCacheStats analysis_total;
  std::size_t evaluations = 0;
  std::optional<semantics::AnalysisCache> base;
  if (options.base.use_analysis_cache) base.emplace(serial);

  const dcf::System initial_scheduled =
      base ? derive_schedule(serial, *base) : derive_schedule(serial);
  const Metrics baseline =
      evaluate(initial_scheduled, lib, options.base.measure, &sim_total);
  ++evaluations;
  const double initial_objective =
      objective_of(baseline, baseline, options.base.area_weight);
  Rng rng(options.seed);

  OptimizerResult best_run;
  double best_objective = std::numeric_limits<double>::infinity();

  for (std::size_t restart = 0; restart < options.restarts; ++restart) {
    dcf::System master = serial;
    // The restart's master is a fresh copy of the unchanged serial
    // design, so every analysis of `base` is valid for it.
    std::optional<semantics::AnalysisCache> cache;
    if (base) {
      cache = base->successor(master, semantics::PreservedAnalyses::all());
    }
    dcf::System scheduled = initial_scheduled;
    double objective = initial_objective;
    OptimizerResult run;
    run.best = scheduled;
    run.serial_master = master;
    run.initial = baseline;
    run.final = baseline;

    for (std::size_t step = 0; step < options.base.max_steps; ++step) {
      auto pairs = cache ? transform::mergeable_pairs(master, *cache)
                         : transform::mergeable_pairs(master);
      if (pairs.empty()) break;
      for (std::size_t i = pairs.size(); i > 1; --i) {
        std::swap(pairs[i - 1], pairs[rng.below(i)]);
      }
      // First *improving* merger in the shuffled order.
      bool improved = false;
      for (const auto& [vi, vj] : pairs) {
        dcf::System merged =
            cache ? transform::merge_vertices(master, vi, vj, *cache)
                  : transform::merge_vertices(master, vi, vj);
        dcf::System candidate = derive_schedule(merged);
        const Metrics metrics =
            evaluate(candidate, lib, options.base.measure, &sim_total);
        ++evaluations;
        const double candidate_objective =
            objective_of(metrics, baseline, options.base.area_weight);
        if (candidate_objective < objective - 1e-12) {
          master = std::move(merged);
          if (cache) {
            analysis_total += cache->stats();
            cache = cache->successor(
                master, transform::merge_preserved_analyses());
          }
          scheduled = std::move(candidate);
          objective = candidate_objective;
          ++run.merges_applied;
          run.steps.push_back({"stochastic merge", metrics,
                               candidate_objective});
          improved = true;
          break;
        }
      }
      if (!improved) break;
    }
    if (cache) analysis_total += cache->stats();

    if (objective < best_objective) {
      best_objective = objective;
      run.best = scheduled;
      run.serial_master = master;
      run.final = run.steps.empty() ? baseline : run.steps.back().metrics;
      best_run = std::move(run);
    }
  }
  if (best_run.steps.empty()) {
    best_run.steps.push_back({"initial (stochastic)", baseline,
                              initial_objective});
    best_run.final = baseline;
  }
  if (base) analysis_total += base->stats();
  // Search-wide totals, not just the winning restart's share.
  best_run.sim_stats = sim_total;
  best_run.analysis_stats = analysis_total;
  best_run.candidates_evaluated = evaluations;
  return best_run;
}

namespace {

/// One beam slot. `master` lives behind a shared_ptr so the bound
/// AnalysisCache (which holds the System by address) survives vector
/// reshuffles, and so frontier points and child candidates can alias it.
struct BeamEntry {
  std::shared_ptr<const dcf::System> master;
  std::shared_ptr<const semantics::AnalysisCache> cache;  // null = uncached
  transform::Provenance provenance;
  std::uint64_t hash = 0;  ///< design_hash of *master
};

enum class ActionKind : std::uint8_t { kMerge, kSplit, kRegshare, kChain };

/// One (candidate × pass) successor job, enumerated serially in a fixed
/// total order: beam index major; within a candidate merges (in
/// mergeable_pairs order), then splits (vertex id, state id), then
/// regshare, then chain. The job index is the tie-breaking total order
/// every downstream decision uses.
struct Action {
  ActionKind kind = ActionKind::kMerge;
  std::size_t parent = 0;  ///< beam index
  dcf::VertexId vi, vj;    ///< merge operands (vi into vj)
  dcf::VertexId split_unit;
  petri::PlaceId split_state;
  std::string detail;  ///< provenance operand, from the parent's names
};

const char* action_pass_name(ActionKind kind) {
  switch (kind) {
    case ActionKind::kMerge: return "merge";
    case ActionKind::kSplit: return "split";
    case ActionKind::kRegshare: return "regshare";
    case ActionKind::kChain: return "chain";
  }
  return "?";
}

semantics::PreservedAnalyses action_preserved(ActionKind kind) {
  switch (kind) {
    case ActionKind::kMerge: return transform::merge_preserved_analyses();
    case ActionKind::kSplit: return transform::split_preserved_analyses();
    case ActionKind::kRegshare:
      return transform::regshare_preserved_analyses();
    case ActionKind::kChain: return semantics::PreservedAnalyses::none();
  }
  return semantics::PreservedAnalyses::none();
}

dcf::System apply_action(const dcf::System& master,
                         const semantics::AnalysisCache* cache,
                         const Action& action) {
  switch (action.kind) {
    case ActionKind::kMerge:
      return cache ? transform::merge_vertices(master, action.vi, action.vj,
                                               *cache)
                   : transform::merge_vertices(master, action.vi, action.vj);
    case ActionKind::kSplit:
      return transform::split_vertex(master, action.split_unit,
                                     {action.split_state});
    case ActionKind::kRegshare:
      return cache ? transform::share_registers(master, *cache)
                   : transform::share_registers(master);
    case ActionKind::kChain:
      return cache ? transform::chain_states(master, *cache)
                   : transform::chain_states(master);
  }
  throw TransformError("unknown optimizer action");
}

void enumerate_actions(const BeamEntry& entry, std::size_t parent,
                       const ParetoOptions& options,
                       std::vector<Action>& out) {
  const dcf::System& master = *entry.master;
  const dcf::DataPath& dp = master.datapath();

  const auto pairs = entry.cache
                         ? transform::mergeable_pairs(master, *entry.cache)
                         : transform::mergeable_pairs(master);
  for (const auto& [vi, vj] : pairs) {
    Action a;
    a.kind = ActionKind::kMerge;
    a.parent = parent;
    a.vi = vi;
    a.vj = vj;
    a.detail = dp.name(vi) + " into " + dp.name(vj);
    out.push_back(std::move(a));
  }

  // Split actions: peel one associated state off a shared combinational
  // unit (the Def 4.6 merger's inverse) — the moves that walk back up
  // the area axis after regshare/chain changed the trade-off.
  std::vector<std::vector<petri::PlaceId>> states_of(dp.vertex_count());
  for (const petri::PlaceId s : master.control().net().places()) {
    for (const dcf::VertexId v : master.associated_vertices(s)) {
      if (dp.kind(v) != dcf::VertexKind::kInternal) continue;
      if (dp.is_sequential_vertex(v)) continue;
      states_of[v.index()].push_back(s);
    }
  }
  std::size_t splits = 0;
  for (std::size_t i = 0;
       i < states_of.size() && splits < options.max_split_actions; ++i) {
    if (states_of[i].size() < 2) continue;
    const dcf::VertexId v(static_cast<std::uint32_t>(i));
    for (const petri::PlaceId s : states_of[i]) {
      if (splits >= options.max_split_actions) break;
      if (!transform::can_split(master, v, {s}).legal) continue;
      Action a;
      a.kind = ActionKind::kSplit;
      a.parent = parent;
      a.split_unit = v;
      a.split_state = s;
      a.detail = dp.name(v) + " @ s" + std::to_string(s.value());
      out.push_back(std::move(a));
      ++splits;
    }
  }

  Action regshare;
  regshare.kind = ActionKind::kRegshare;
  regshare.parent = parent;
  out.push_back(std::move(regshare));
  Action chain;
  chain.kind = ActionKind::kChain;
  chain.parent = parent;
  out.push_back(std::move(chain));
}

std::string hash_hex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

ParetoResult optimize_pareto(const dcf::System& serial,
                             const ModuleLibrary& lib,
                             const ParetoOptions& options) {
  const obs::ObsSpan pareto_span("pareto");
  obs::TraceSession* session = obs::TraceSession::active();
  ParetoResult result;
  ParetoFrontier frontier;
  std::unordered_set<std::uint64_t> explored;
  // Designs whose successor set has already been enumerated. Expansion
  // is deterministic per design, so re-expanding could only reproduce
  // dedup hits — every design is expanded at most once, ever.
  std::unordered_set<std::uint64_t> expanded_designs;
  // Archive elitism (PAES-style): every frontier-resident design keeps a
  // beam entry here and re-enters the beam until it has been expanded,
  // so a non-dominated design never loses its unexplored successors just
  // because the λ-slots picked other lanes that generation.
  std::unordered_map<std::uint64_t, BeamEntry> archive;
  // Every cache ever created, folded into result.analysis_stats at the
  // end. Entries can alias between beam and archive across generations,
  // so per-generation retirement would double-count. The paired master
  // keeps the cache's referenced System alive.
  std::vector<std::pair<std::shared_ptr<const dcf::System>,
                        std::shared_ptr<const semantics::AnalysisCache>>>
      cache_registry;

  // Seed candidate: the untransformed serial master.
  const auto seed_master = std::make_shared<const dcf::System>(serial);
  std::shared_ptr<const semantics::AnalysisCache> seed_cache;
  if (options.use_analysis_cache) {
    seed_cache = std::make_shared<const semantics::AnalysisCache>(
        *seed_master);
  }
  dcf::System seed_scheduled = seed_cache
                                   ? derive_schedule(*seed_master, *seed_cache)
                                   : derive_schedule(*seed_master);
  result.initial =
      evaluate(seed_scheduled, lib, options.measure, &result.sim_stats);
  ++result.candidates_evaluated;
  const Metrics initial = result.initial;
  const auto norm = [](double v, double base) {
    return base > 0 ? v / base : v;
  };

  const std::uint64_t seed_hash = design_hash(*seed_master);
  explored.insert(seed_hash);
  frontier.insert(
      {*seed_master, std::move(seed_scheduled), initial, {}, seed_hash});
  if (seed_cache) cache_registry.emplace_back(seed_master, seed_cache);

  std::vector<BeamEntry> beam;
  beam.push_back({seed_master, seed_cache, {}, seed_hash});
  archive[seed_hash] = beam.front();

  std::size_t stall = 0;
  result.stop_reason = "generations";
  for (std::size_t gen = 0; gen < options.generations; ++gen) {
    if (options.budget != nullptr && options.budget->exhausted()) {
      result.budget_exhausted = true;
      result.stop_reason = options.budget->reason();
      break;
    }
    std::vector<Action> actions;
    std::vector<std::size_t> active;  // beam indices expanded this gen
    for (std::size_t i = 0; i < beam.size(); ++i) {
      if (!expanded_designs.insert(beam[i].hash).second) continue;
      active.push_back(i);
      enumerate_actions(beam[i], i, options, actions);
    }
    const obs::ObsSpan gen_span("pareto.generation", [&] {
      return "{\"generation\":" + std::to_string(gen) +
             ",\"beam\":" + std::to_string(beam.size()) +
             ",\"actions\":" + std::to_string(actions.size()) + "}";
    });
    // Every beam entry already expanded: no design can produce a new
    // successor, so the search has converged.
    if (actions.empty()) break;

    // Prime every shared analysis this generation's workers will read
    // (order/concurrency for merges, dependence for chain, liveness for
    // regshare) so a lazy first touch under the cache lock never stalls
    // sibling jobs.
    if (options.use_analysis_cache) {
      sim::parallel_jobs(active.size(), options.eval_threads,
                         [&](std::size_t /*worker*/, std::size_t k) {
                           const BeamEntry& entry = beam[active[k]];
                           entry.cache->warm_control();
                           entry.cache->dependence();
                           transform::cached_liveness(*entry.cache);
                         });
    }

    // Phase A — apply + hash every successor in parallel. Cheap relative
    // to measurement, so dedup (serial, in job order) happens *before*
    // any schedule is derived or simulated.
    struct Expansion {
      std::shared_ptr<const dcf::System> master;
      std::uint64_t hash = 0;
    };
    std::vector<Expansion> expanded(actions.size());
    sim::parallel_jobs(
        actions.size(), options.eval_threads,
        [&](std::size_t /*worker*/, std::size_t j) {
          const obs::ObsSpan expand_span("pareto.expand", [&] {
            return "{\"job\":" + std::to_string(j) + ",\"pass\":\"" +
                   action_pass_name(actions[j].kind) + "\"}";
          });
          const BeamEntry& parent = beam[actions[j].parent];
          dcf::System next =
              apply_action(*parent.master, parent.cache.get(), actions[j]);
          expanded[j].hash = design_hash(next);
          expanded[j].master =
              std::make_shared<const dcf::System>(std::move(next));
        });

    std::vector<std::size_t> fresh;
    for (std::size_t j = 0; j < actions.size(); ++j) {
      if (!explored.insert(expanded[j].hash).second) {
        ++result.dedup_hits;
        continue;
      }
      fresh.push_back(j);
    }
    if (session != nullptr) {
      session->counter("pareto.dedup_hits",
                       static_cast<std::int64_t>(result.dedup_hits));
    }
    // Nothing new reachable from this beam: the next generation would
    // enumerate the identical action set, so the search has converged.
    if (fresh.empty()) break;

    // Phase B — derive + measure the surviving successors in parallel.
    struct Measured {
      dcf::System scheduled;
      Metrics metrics;
      sim::SimStats sim_stats;
    };
    std::vector<Measured> measured(fresh.size());
    sim::parallel_jobs(
        fresh.size(), options.eval_threads,
        [&](std::size_t /*worker*/, std::size_t k) {
          const obs::ObsSpan measure_span("pareto.measure", [&] {
            return "{\"job\":" + std::to_string(fresh[k]) + "}";
          });
          Measured& m = measured[k];
          m.scheduled = derive_schedule(*expanded[fresh[k]].master);
          m.metrics =
              evaluate(m.scheduled, lib, options.measure, &m.sim_stats);
        });
    for (const Measured& m : measured) result.sim_stats += m.sim_stats;
    result.candidates_evaluated += fresh.size();

    // Serial reduction in job order: frontier insertion + survivor
    // records for beam selection.
    struct Survivor {
      std::size_t job = 0;
      double area_norm = 0;
      double time_norm = 0;
      transform::Provenance provenance;
    };
    std::vector<Survivor> survivors;
    survivors.reserve(fresh.size());
    bool inserted_any = false;
    const auto make_child = [&](std::size_t j,
                                transform::Provenance provenance) {
      const Action& action = actions[j];
      BeamEntry child;
      child.master = expanded[j].master;
      child.hash = expanded[j].hash;
      child.provenance = std::move(provenance);
      if (options.use_analysis_cache) {
        // Carry the parent's declared-preserved analyses into the
        // child's cache — the Pass framework's successor() protocol,
        // applied per search edge.
        child.cache = std::make_shared<const semantics::AnalysisCache>(
            beam[action.parent].cache->successor(
                *child.master, action_preserved(action.kind)));
        cache_registry.emplace_back(child.master, child.cache);
      }
      return child;
    };
    for (std::size_t k = 0; k < fresh.size(); ++k) {
      const std::size_t j = fresh[k];
      const Action& action = actions[j];
      transform::Provenance provenance = beam[action.parent].provenance;
      provenance.push_back({action_pass_name(action.kind), action.detail});
      if (frontier.insert({*expanded[j].master, measured[k].scheduled,
                           measured[k].metrics, provenance,
                           expanded[j].hash})) {
        inserted_any = true;
        archive[expanded[j].hash] = make_child(j, provenance);
      }
      survivors.push_back({j, norm(measured[k].metrics.area, initial.area),
                           norm(measured[k].metrics.time_ns,
                                initial.time_ns),
                           std::move(provenance)});
    }
    // Drop evicted designs from the archive: only frontier residents
    // earn guaranteed expansion.
    {
      std::unordered_set<std::uint64_t> frontier_hashes;
      for (const FrontierPoint& p : frontier.points()) {
        frontier_hashes.insert(p.design_hash);
      }
      for (auto it = archive.begin(); it != archive.end();) {
        it = frontier_hashes.count(it->first) ? std::next(it)
                                              : archive.erase(it);
      }
    }
    if (session != nullptr) {
      session->counter("pareto.frontier_size",
                       static_cast<std::int64_t>(frontier.size()));
    }
    if (obs::progress_enabled()) {
      obs::ProgressCounters& pc = obs::progress();
      pc.pareto_generation.store(gen + 1, std::memory_order_relaxed);
      pc.pareto_frontier_points.store(frontier.size(),
                                      std::memory_order_relaxed);
      // Normalized hypervolume is cheap (frontier-sized staircase sweep)
      // and only computed when a meter is live.
      const double hv =
          (initial.area > 0 && initial.time_ns > 0)
              ? frontier.hypervolume(kHypervolumeRef * initial.area,
                                     kHypervolumeRef * initial.time_ns) /
                    (initial.area * initial.time_ns)
              : 0.0;
      pc.pareto_hypervolume.store(hv, std::memory_order_relaxed);
      pc.pareto_updates.fetch_add(1, std::memory_order_relaxed);
    }

    // Beam selection. Reserved λ-grid slots first: for each λ the
    // earliest-job-index argmin of the scalarized objective (the greedy
    // acceptance rule, one per descent direction). Remaining slots fill
    // by non-domination rank with a lexicographic deterministic
    // tie-break (rank, area_norm + time_norm, job index).
    std::vector<std::size_t> selected;
    const auto already_selected = [&](std::size_t s) {
      return std::find(selected.begin(), selected.end(), s) !=
             selected.end();
    };
    for (const double lambda : options.lambda_grid) {
      if (selected.size() >= options.beam_width) break;
      std::size_t best = survivors.size();
      double best_objective = std::numeric_limits<double>::infinity();
      for (std::size_t s = 0; s < survivors.size(); ++s) {
        const double objective = lambda * survivors[s].area_norm +
                                 (1.0 - lambda) * survivors[s].time_norm;
        if (objective < best_objective) {
          best_objective = objective;
          best = s;
        }
      }
      if (best < survivors.size() && !already_selected(best)) {
        selected.push_back(best);
      }
    }
    if (selected.size() < options.beam_width &&
        survivors.size() > selected.size()) {
      std::vector<std::size_t> rank(survivors.size(), 0);
      for (std::size_t a = 0; a < survivors.size(); ++a) {
        for (std::size_t b = 0; b < survivors.size(); ++b) {
          if (a == b) continue;
          const bool dominates =
              survivors[b].area_norm <= survivors[a].area_norm &&
              survivors[b].time_norm <= survivors[a].time_norm &&
              (survivors[b].area_norm < survivors[a].area_norm ||
               survivors[b].time_norm < survivors[a].time_norm);
          if (dominates) ++rank[a];
        }
      }
      std::vector<std::size_t> rest;
      for (std::size_t s = 0; s < survivors.size(); ++s) {
        if (!already_selected(s)) rest.push_back(s);
      }
      std::sort(rest.begin(), rest.end(),
                [&](std::size_t a, std::size_t b) {
                  if (rank[a] != rank[b]) return rank[a] < rank[b];
                  const double sa =
                      survivors[a].area_norm + survivors[a].time_norm;
                  const double sb =
                      survivors[b].area_norm + survivors[b].time_norm;
                  if (sa != sb) return sa < sb;
                  return survivors[a].job < survivors[b].job;
                });
      for (const std::size_t s : rest) {
        if (selected.size() >= options.beam_width) break;
        selected.push_back(s);
      }
    }

    std::vector<BeamEntry> next_beam;
    next_beam.reserve(selected.size() + archive.size());
    std::unordered_set<std::uint64_t> in_next;
    for (const std::size_t s : selected) {
      const std::size_t j = survivors[s].job;
      if (!in_next.insert(expanded[j].hash).second) continue;
      // Frontier-inserted survivors already have an archive entry (and
      // cache) — alias it rather than building a second one.
      const auto it = archive.find(expanded[j].hash);
      next_beam.push_back(it != archive.end()
                              ? it->second
                              : make_child(j, survivors[s].provenance));
    }
    // Archive elitism: append every frontier resident the λ-slots did
    // not pick. Already-expanded residents are skipped at enumeration,
    // so this costs nothing once a design's successors have been tried.
    for (const FrontierPoint& p : frontier.points()) {
      const auto it = archive.find(p.design_hash);
      if (it == archive.end()) continue;
      if (!in_next.insert(p.design_hash).second) continue;
      next_beam.push_back(it->second);
    }

    beam = std::move(next_beam);
    ++result.generations_run;

    if (inserted_any) {
      stall = 0;
    } else if (++stall >= options.stall_generations) {
      result.stop_reason = "converged";
      break;
    }
  }
  // Fold every cache's lifetime counters exactly once. Entries alias
  // between beam generations and the archive, so this happens off one
  // flat registry instead of at retirement points.
  for (const auto& [master, cache] : cache_registry) {
    (void)master;
    result.analysis_stats += cache->stats();
  }

  result.frontier = frontier.points();
  for (const FrontierPoint& point : result.frontier) {
    result.frontier_bytes += sizeof(FrontierPoint) +
                             dcf::save_system(point.master).size() +
                             dcf::save_system(point.scheduled).size();
  }
  result.hypervolume =
      (initial.area > 0 && initial.time_ns > 0)
          ? frontier.hypervolume(kHypervolumeRef * initial.area,
                                 kHypervolumeRef * initial.time_ns) /
                (initial.area * initial.time_ns)
          : 0.0;

  if (options.verify_frontier) {
    const obs::ObsSpan verify_span("pareto.verify", [&] {
      return "{\"points\":" + std::to_string(result.frontier.size()) + "}";
    });
    for (const FrontierPoint& point : result.frontier) {
      const semantics::EquivalenceVerdict verdict =
          semantics::differential_equivalence(serial, point.scheduled,
                                              options.verify);
      if (!verdict.holds) {
        throw TransformError(
            "pareto frontier point '" +
            transform::provenance_to_string(point.provenance) +
            "' failed Def 4.1 equivalence against the seed: " + verdict.why);
      }
      ++result.verified_points;
    }
  }
  return result;
}

std::string frontier_to_json(const ParetoResult& result,
                             const std::string& design_name) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object()
      .kv("design", design_name)
      .key("objectives")
      .begin_array()
      .value("area")
      .value("time_ns")
      .end_array()
      .key("initial")
      .begin_object()
      .kv("area", result.initial.area)
      .kv("mean_cycles", result.initial.mean_cycles)
      .kv("cycle_time", result.initial.cycle_time)
      .kv("time_ns", result.initial.time_ns)
      .end_object()
      .kv("hypervolume", result.hypervolume)
      .kv("hypervolume_ref", kHypervolumeRef)
      .kv("generations", result.generations_run)
      .kv("candidates_evaluated", result.candidates_evaluated)
      .kv("dedup_hits", result.dedup_hits)
      .key("points")
      .begin_array();
  for (const FrontierPoint& point : result.frontier) {
    w.begin_object()
        .kv("hash", hash_hex(point.design_hash))
        .kv("area", point.metrics.area)
        .kv("mean_cycles", point.metrics.mean_cycles)
        .kv("cycle_time", point.metrics.cycle_time)
        .kv("time_ns", point.metrics.time_ns)
        .key("provenance")
        .begin_array();
    for (const transform::ProvenanceStep& step : point.provenance) {
      w.begin_object().kv("pass", step.pass).kv("detail", step.detail)
          .end_object();
    }
    w.end_array().end_object();
  }
  w.end_array().end_object();
  return os.str();
}

}  // namespace camad::synth
