#include "synth/fold.h"

#include <vector>

#include "dcf/value.h"

namespace camad::synth {
namespace {

std::size_t folded_ops = 0;  // per-call accumulator (single-threaded)

ExprPtr fold_impl(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return Expr::literal_of(e.literal);
    case ExprKind::kVariable:
      return Expr::variable(e.name);
    case ExprKind::kUnary: {
      ExprPtr operand = fold_impl(*e.lhs);
      if (operand->kind == ExprKind::kLiteral) {
        const std::vector<dcf::Value> in{dcf::Value(operand->literal)};
        const dcf::Value v = dcf::evaluate_op(dcf::Operation{e.op, 0}, in);
        if (v.defined()) {
          ++folded_ops;
          return Expr::literal_of(v.raw());
        }
      }
      return Expr::unary(e.op, std::move(operand));
    }
    case ExprKind::kMux: {
      ExprPtr cond = fold_impl(*e.lhs);
      ExprPtr a = fold_impl(*e.rhs);
      ExprPtr b = fold_impl(*e.third);
      // kMux evaluates all operands eagerly (⊥ in either branch poisons
      // the result), so folding is only sound when all three are known.
      if (cond->kind == ExprKind::kLiteral && a->kind == ExprKind::kLiteral &&
          b->kind == ExprKind::kLiteral) {
        ++folded_ops;
        return Expr::literal_of(cond->literal != 0 ? a->literal : b->literal);
      }
      return Expr::mux(std::move(cond), std::move(a), std::move(b));
    }
    case ExprKind::kBinary: {
      ExprPtr lhs = fold_impl(*e.lhs);
      ExprPtr rhs = fold_impl(*e.rhs);
      if (lhs->kind == ExprKind::kLiteral &&
          rhs->kind == ExprKind::kLiteral) {
        const std::vector<dcf::Value> in{dcf::Value(lhs->literal),
                                         dcf::Value(rhs->literal)};
        const dcf::Value v = dcf::evaluate_op(dcf::Operation{e.op, 0}, in);
        if (v.defined()) {
          ++folded_ops;
          return Expr::literal_of(v.raw());
        }
      }
      return Expr::binary(e.op, std::move(lhs), std::move(rhs));
    }
  }
  return Expr::literal_of(0);  // unreachable
}

void fold_block(Block& block);

void fold_stmt(Stmt& stmt) {
  switch (stmt.kind) {
    case StmtKind::kAssign:
      stmt.value = fold_impl(*stmt.value);
      break;
    case StmtKind::kIf:
      stmt.cond = fold_impl(*stmt.cond);
      fold_block(stmt.body);
      fold_block(stmt.els);
      break;
    case StmtKind::kWhile:
      stmt.cond = fold_impl(*stmt.cond);
      fold_block(stmt.body);
      break;
    case StmtKind::kPar:
      for (Block& branch : stmt.branches) fold_block(branch);
      break;
  }
}

void fold_block(Block& block) {
  for (StmtPtr& stmt : block.stmts) fold_stmt(*stmt);
}

}  // namespace

ExprPtr fold_expr(const Expr& expr) {
  return fold_impl(expr);
}

std::size_t fold_constants(Program& program) {
  folded_ops = 0;
  fold_block(program.body);
  return folded_ops;
}

}  // namespace camad::synth
