// Cost and performance estimation over data/control flow systems.
//
// Area = Σ functional-unit/register areas + steering logic (an n-way mux
// in front of every input port with n > 1 pending arcs).
// Cycle time = the slowest state: the longest combinational path through
// the state's active subgraph (module delays along arcs), as a register-
// to-register hardware path would be.
// Execution time = measured cycles (simulation) × cycle time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dcf/system.h"
#include "sim/simulator.h"
#include "synth/library.h"

namespace camad::synth {

struct AreaReport {
  double functional_units = 0;
  double registers = 0;
  double constants = 0;
  double steering = 0;  ///< muxes on multi-driven input ports
  [[nodiscard]] double total() const {
    return functional_units + registers + constants + steering;
  }
};

AreaReport estimate_area(const dcf::System& system, const ModuleLibrary& lib);

struct TimingReport {
  double cycle_time = 0;          ///< ns, max over states
  petri::PlaceId critical_state;  ///< state with the longest path
};

TimingReport estimate_cycle_time(const dcf::System& system,
                                 const ModuleLibrary& lib);

struct PerformanceReport {
  double mean_cycles = 0;      ///< average over the sampled environments
  std::uint64_t max_cycles = 0;
  bool all_terminated = true;
  double cycle_time = 0;       ///< ns
  /// Plan-cache activity summed over all sampled runs.
  sim::SimStats sim_stats;
  [[nodiscard]] double mean_time_ns() const {
    return mean_cycles * cycle_time;
  }
};

struct MeasureOptions {
  std::size_t environments = 4;
  std::uint64_t seed = 7;
  std::size_t stream_length = 64;
  std::int64_t value_lo = 1;
  std::int64_t value_hi = 99;
  std::uint64_t max_cycles = 200000;
  /// Route the runs through sim::simulate_batch, so one engine serves
  /// every environment and configuration plans compile once per
  /// measurement instead of once per environment. Off = a fresh engine
  /// per environment (the pre-batch behaviour; identical results either
  /// way — kept as the baseline for bench_optimizer).
  bool share_engine = true;
};

/// Simulates the system over random environments and combines the cycle
/// counts with the estimated cycle time.
PerformanceReport measure_performance(const dcf::System& system,
                                      const ModuleLibrary& lib,
                                      const MeasureOptions& options = {});

}  // namespace camad::synth
