// Pareto frontier of explored design points.
//
// The optimizer's deliverable (Sec 5's design-space exploration) is not
// one design but the set of non-dominated (area, execution-time) points,
// each carrying the serial master it measures, the schedule that was
// measured, and the transform chain that produced it. ParetoFrontier
// maintains that set under dominance insertion and scores it with the
// standard 2-D staircase hypervolume.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dcf/system.h"
#include "transform/provenance.h"

namespace camad::synth {

struct Metrics {
  double area = 0;
  double mean_cycles = 0;
  double cycle_time = 0;
  double time_ns = 0;
};

struct FrontierPoint {
  dcf::System master;     ///< serial master behind the schedule
  dcf::System scheduled;  ///< derived parallel schedule (what was measured)
  Metrics metrics;
  transform::Provenance provenance;  ///< transform chain from the seed
  std::uint64_t design_hash = 0;     ///< canonical hash of `master`
};

/// Non-dominated set over (area, time_ns), kept in area-ascending
/// (equivalently time-descending) canonical order. Comparisons are exact:
/// metrics come from deterministic measurement, so there is no epsilon to
/// tune and insertion order cannot perturb the surviving set's bytes.
class ParetoFrontier {
 public:
  /// Rejects `point` if an existing point weakly dominates it (both
  /// coordinates <=, covering exact duplicates); otherwise evicts every
  /// point it dominates and inserts. Returns true iff inserted.
  bool insert(FrontierPoint point);

  [[nodiscard]] const std::vector<FrontierPoint>& points() const {
    return points_;
  }
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] bool empty() const { return points_.empty(); }

  /// True iff some frontier point weakly dominates (area, time_ns).
  [[nodiscard]] bool dominates(double area, double time_ns) const;

  /// Area of the region the frontier dominates inside
  /// [0, ref_area] x [0, ref_time_ns] (2-D staircase sweep). Points at or
  /// beyond the reference in a coordinate contribute only their clamped
  /// part; the result is never negative.
  [[nodiscard]] double hypervolume(double ref_area, double ref_time_ns) const;

 private:
  std::vector<FrontierPoint> points_;
};

}  // namespace camad::synth
