#include "synth/ast.h"

#include <sstream>

#include "util/error.h"

namespace camad::synth {

ExprPtr Expr::literal_of(std::int64_t value) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = value;
  return e;
}

ExprPtr Expr::variable(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kVariable;
  e->name = std::move(name);
  return e;
}

ExprPtr Expr::unary(dcf::OpCode op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->op = op;
  e->lhs = std::move(operand);
  return e;
}

ExprPtr Expr::binary(dcf::OpCode op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr Expr::mux(ExprPtr cond, ExprPtr then_value, ExprPtr else_value) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kMux;
  e->op = dcf::OpCode::kMux;
  e->lhs = std::move(cond);
  e->rhs = std::move(then_value);
  e->third = std::move(else_value);
  return e;
}

namespace {

std::string op_symbol(dcf::OpCode op) {
  using dcf::OpCode;
  switch (op) {
    case OpCode::kAdd: return "+";
    case OpCode::kSub: return "-";
    case OpCode::kMul: return "*";
    case OpCode::kDiv: return "/";
    case OpCode::kMod: return "%";
    case OpCode::kAnd: return "&";
    case OpCode::kOr: return "|";
    case OpCode::kXor: return "^";
    case OpCode::kShl: return "<<";
    case OpCode::kShr: return ">>";
    case OpCode::kEq: return "==";
    case OpCode::kNe: return "!=";
    case OpCode::kLt: return "<";
    case OpCode::kLe: return "<=";
    case OpCode::kGt: return ">";
    case OpCode::kGe: return ">=";
    case OpCode::kNeg: return "-";
    case OpCode::kNot: return "!";
    default:
      throw Error("op_symbol: no BDL syntax for " +
                  std::string(dcf::op_name(op)));
  }
}

void print_expr(const Expr& e, std::ostream& os) {
  switch (e.kind) {
    case ExprKind::kLiteral: os << e.literal; break;
    case ExprKind::kVariable: os << e.name; break;
    case ExprKind::kUnary:
      os << op_symbol(e.op) << '(';
      print_expr(*e.lhs, os);
      os << ')';
      break;
    case ExprKind::kBinary:
      os << '(';
      print_expr(*e.lhs, os);
      os << ' ' << op_symbol(e.op) << ' ';
      print_expr(*e.rhs, os);
      os << ')';
      break;
    case ExprKind::kMux:
      os << "mux(";
      print_expr(*e.lhs, os);
      os << ", ";
      print_expr(*e.rhs, os);
      os << ", ";
      print_expr(*e.third, os);
      os << ')';
      break;
  }
}

void print_block(const Block& block, std::ostream& os, int depth);

void print_stmt(const Stmt& s, std::ostream& os, int depth) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  switch (s.kind) {
    case StmtKind::kAssign:
      os << pad << s.target << " := ";
      print_expr(*s.value, os);
      os << ";\n";
      break;
    case StmtKind::kIf:
      os << pad << "if ";
      print_expr(*s.cond, os);
      os << " {\n";
      print_block(s.body, os, depth + 1);
      os << pad << "}";
      if (!s.els.stmts.empty()) {
        os << " else {\n";
        print_block(s.els, os, depth + 1);
        os << pad << "}";
      }
      os << "\n";
      break;
    case StmtKind::kWhile:
      os << pad << "while ";
      print_expr(*s.cond, os);
      os << " {\n";
      print_block(s.body, os, depth + 1);
      os << pad << "}\n";
      break;
    case StmtKind::kPar:
      os << pad << "par {\n";
      for (const Block& branch : s.branches) {
        os << pad << "  branch {\n";
        print_block(branch, os, depth + 2);
        os << pad << "  }\n";
      }
      os << pad << "}\n";
      break;
  }
}

void print_block(const Block& block, std::ostream& os, int depth) {
  for (const StmtPtr& s : block.stmts) print_stmt(*s, os, depth);
}

}  // namespace

std::string to_source(const Expr& expr) {
  std::ostringstream os;
  print_expr(expr, os);
  return os.str();
}

std::string to_source(const Program& program) {
  std::ostringstream os;
  os << "design " << program.name << " {\n";
  auto decl = [&](const char* kind, const std::vector<std::string>& names) {
    if (names.empty()) return;
    os << "  " << kind << ' ';
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i != 0) os << ", ";
      os << names[i];
    }
    os << ";\n";
  };
  decl("in", program.inputs);
  decl("out", program.outputs);
  decl("var", program.variables);
  os << "  begin\n";
  print_block(program.body, os, 2);
  os << "  end\n}\n";
  return os.str();
}

}  // namespace camad::synth
