// Canonical structural design hash for search-space de-duplication.
//
// The Pareto explorer reaches the same serial master along many action
// orders (merge A then B ≡ merge B then A, a split undoes a merge, …).
// Re-measuring each arrival would multiply the search cost by the number
// of permutations, so candidates are de-duplicated by a hash of the
// design's *structure*: a Weisfeiler-Lehman-style iterative label
// refinement over the typed union graph of data path (vertices, ports,
// arcs) and control net (places, transitions, C, G, flow with weights).
//
// Invariances, by construction:
//   * renumbering — vertex/port/arc/place/transition ids never enter a
//     label; neighbours contribute as sorted multisets;
//   * internal renaming — only *external* vertex names (the nominal
//     environment interface) are hashed; merge "a into b" and "b into a"
//     therefore collide, which is exactly the dedup the search wants.
// Operand order stays significant (a port's position in its owner's
// input list is part of its label — `a - b` never collides with
// `b - a` unless the channels themselves are isomorphic).
//
// Equal hashes do not certify isomorphism: a collision only costs the
// search one unexplored (behaviourally equivalent) route, never
// soundness — every reported point is still Def 4.1-checked against the
// seed. tests/optimizer_test.cpp sweeps 500 generated designs asserting
// hash-equal ⇒ differential-equivalence-equal and reports the observed
// collision rate.
#pragma once

#include <cstdint>

#include "dcf/system.h"

namespace camad::synth {

/// Canonical structural hash of a system (see file comment for the
/// invariance contract). Deterministic across runs and platforms: mixes
/// with fixed 64-bit constants, never std::hash.
[[nodiscard]] std::uint64_t design_hash(const dcf::System& system);

}  // namespace camad::synth
