#include "synth/parser.h"

#include <algorithm>
#include <map>
#include <set>

#include "synth/lexer.h"
#include "util/error.h"

namespace camad::synth {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view source) : tokens_(tokenize(source)) {}

  Program program() {
    expect_keyword("design");
    Program p;
    program_ = &p;
    p.name = expect_identifier();
    expect_symbol("{");
    while (at_keyword("in") || at_keyword("out") || at_keyword("var") ||
           at_keyword("const")) {
      const std::string kind = next().text;
      if (kind == "const") {
        // const NAME = [-]number ;
        const std::string name = expect_identifier();
        if (!seen_names_.insert(name).second) {
          fail("duplicate declaration of '" + name + "'");
        }
        expect_symbol("=");
        bool negative = false;
        if (at_symbol("-")) {
          negative = true;
          next();
        }
        if (peek().kind != TokenKind::kNumber) fail("const needs a number");
        const std::int64_t value = next().number;
        constants_[name] = negative ? -value : value;
        expect_symbol(";");
        continue;
      }
      while (true) {
        const std::string name = expect_identifier();
        declare(p, kind, name);
        if (!at_symbol(",")) break;
        next();
      }
      expect_symbol(";");
    }
    expect_keyword("begin");
    p.body = block_until_end();
    expect_keyword("end");
    expect_symbol("}");
    expect_eof();
    validate_references(p);
    return p;
  }

  ExprPtr expression_only() {
    ExprPtr e = expression();
    expect_eof();
    return e;
  }

 private:
  // --- token plumbing -------------------------------------------------------
  const Token& peek() const { return tokens_[pos_]; }
  const Token& next() { return tokens_[pos_++]; }

  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError(why + " (got '" + peek().text + "')", peek().line,
                     peek().column);
  }

  bool at_keyword(std::string_view kw) const {
    return peek().kind == TokenKind::kKeyword && peek().text == kw;
  }
  bool at_symbol(std::string_view sym) const {
    return peek().kind == TokenKind::kSymbol && peek().text == sym;
  }
  void expect_keyword(std::string_view kw) {
    if (!at_keyword(kw)) fail("expected '" + std::string(kw) + "'");
    next();
  }
  void expect_symbol(std::string_view sym) {
    if (!at_symbol(sym)) fail("expected '" + std::string(sym) + "'");
    next();
  }
  std::string expect_identifier() {
    if (peek().kind != TokenKind::kIdentifier) fail("expected identifier");
    return next().text;
  }
  void expect_eof() {
    if (peek().kind != TokenKind::kEndOfFile) fail("expected end of input");
  }

  // --- declarations ----------------------------------------------------------
  void declare(Program& p, const std::string& kind, const std::string& name) {
    if (!seen_names_.insert(name).second) {
      fail("duplicate declaration of '" + name + "'");
    }
    if (kind == "in") p.inputs.push_back(name);
    else if (kind == "out") p.outputs.push_back(name);
    else p.variables.push_back(name);
  }

  // --- statements -------------------------------------------------------------
  Block block_until_end() {
    Block block;
    while (!at_keyword("end") && !at_symbol("}")) {
      StmtPtr stmt = statement();
      for (StmtPtr& pending : pending_stmts_) {
        block.stmts.push_back(std::move(pending));
      }
      pending_stmts_.clear();
      block.stmts.push_back(std::move(stmt));
    }
    return block;
  }

  Block braced_block() {
    expect_symbol("{");
    Block block = block_until_end();
    expect_symbol("}");
    return block;
  }

  StmtPtr statement() {
    auto s = std::make_unique<Stmt>();
    if (at_keyword("if")) {
      next();
      s->kind = StmtKind::kIf;
      s->cond = expression();
      s->body = braced_block();
      if (at_keyword("else")) {
        next();
        s->els = braced_block();
      }
      return s;
    }
    if (at_keyword("while")) {
      next();
      s->kind = StmtKind::kWhile;
      s->cond = expression();
      s->body = braced_block();
      return s;
    }
    if (at_keyword("repeat")) {
      next();
      // repeat <count> { body }  desugars to a counter while-loop over a
      // fresh hidden variable (legal identifier, uniquified).
      std::int64_t count = 0;
      if (peek().kind == TokenKind::kNumber) {
        count = next().number;
      } else if (peek().kind == TokenKind::kIdentifier &&
                 constants_.contains(peek().text)) {
        count = constants_.at(next().text);
      } else {
        fail("repeat needs a literal or const count");
      }
      if (count < 0) fail("repeat count must be nonnegative");
      std::string counter;
      do {
        counter = "_repeat_" + std::to_string(repeat_counter_++);
      } while (seen_names_.contains(counter));
      seen_names_.insert(counter);
      program_->variables.push_back(counter);

      Block body = braced_block();

      auto init = std::make_unique<Stmt>();
      init->kind = StmtKind::kAssign;
      init->target = counter;
      init->value = Expr::literal_of(count);

      auto decrement = std::make_unique<Stmt>();
      decrement->kind = StmtKind::kAssign;
      decrement->target = counter;
      decrement->value = Expr::binary(dcf::OpCode::kSub,
                                      Expr::variable(counter),
                                      Expr::literal_of(1));
      body.stmts.push_back(std::move(decrement));

      auto loop = std::make_unique<Stmt>();
      loop->kind = StmtKind::kWhile;
      loop->cond = Expr::binary(dcf::OpCode::kGt, Expr::variable(counter),
                                Expr::literal_of(0));
      loop->body = std::move(body);

      // The desugaring yields two statements (init + loop); statement()
      // returns one, so the init is spliced in by block_until_end().
      pending_stmts_.push_back(std::move(init));
      return loop;
    }
    if (at_keyword("par")) {
      next();
      s->kind = StmtKind::kPar;
      expect_symbol("{");
      while (at_keyword("branch")) {
        next();
        s->branches.push_back(braced_block());
      }
      if (s->branches.empty()) fail("par needs at least one branch");
      expect_symbol("}");
      return s;
    }
    if (peek().kind == TokenKind::kIdentifier) {
      s->kind = StmtKind::kAssign;
      s->target = next().text;
      expect_symbol(":=");
      s->value = expression();
      expect_symbol(";");
      return s;
    }
    fail("expected statement");
  }

  // --- expressions --------------------------------------------------------------
  ExprPtr expression() { return bitor_level(); }

  ExprPtr binary_level(ExprPtr (Parser::*sub)(),
                       std::initializer_list<
                           std::pair<std::string_view, dcf::OpCode>> ops) {
    ExprPtr lhs = (this->*sub)();
    while (true) {
      bool matched = false;
      for (const auto& [sym, op] : ops) {
        if (at_symbol(sym)) {
          next();
          lhs = Expr::binary(op, std::move(lhs), (this->*sub)());
          matched = true;
          break;
        }
      }
      if (!matched) return lhs;
    }
  }

  ExprPtr bitor_level() {
    return binary_level(&Parser::bitxor_level, {{"|", dcf::OpCode::kOr}});
  }
  ExprPtr bitxor_level() {
    return binary_level(&Parser::bitand_level, {{"^", dcf::OpCode::kXor}});
  }
  ExprPtr bitand_level() {
    return binary_level(&Parser::compare_level, {{"&", dcf::OpCode::kAnd}});
  }
  ExprPtr compare_level() {
    ExprPtr lhs = shift_level();
    for (const auto& [sym, op] :
         std::initializer_list<std::pair<std::string_view, dcf::OpCode>>{
             {"==", dcf::OpCode::kEq}, {"!=", dcf::OpCode::kNe},
             {"<=", dcf::OpCode::kLe}, {">=", dcf::OpCode::kGe},
             {"<", dcf::OpCode::kLt},  {">", dcf::OpCode::kGt}}) {
      if (at_symbol(sym)) {
        next();
        return Expr::binary(op, std::move(lhs), shift_level());
      }
    }
    return lhs;
  }
  ExprPtr shift_level() {
    return binary_level(&Parser::add_level, {{"<<", dcf::OpCode::kShl},
                                             {">>", dcf::OpCode::kShr}});
  }
  ExprPtr add_level() {
    return binary_level(&Parser::mul_level, {{"+", dcf::OpCode::kAdd},
                                             {"-", dcf::OpCode::kSub}});
  }
  ExprPtr mul_level() {
    return binary_level(&Parser::unary_level, {{"*", dcf::OpCode::kMul},
                                               {"/", dcf::OpCode::kDiv},
                                               {"%", dcf::OpCode::kMod}});
  }
  ExprPtr unary_level() {
    if (at_symbol("-")) {
      next();
      return Expr::unary(dcf::OpCode::kNeg, unary_level());
    }
    if (at_symbol("!")) {
      next();
      return Expr::unary(dcf::OpCode::kNot, unary_level());
    }
    return primary();
  }
  ExprPtr primary() {
    if (peek().kind == TokenKind::kNumber) {
      return Expr::literal_of(next().number);
    }
    // mux(cond, a, b): branchless select, lowered to the kMux unit.
    if (peek().kind == TokenKind::kIdentifier && peek().text == "mux" &&
        tokens_[pos_ + 1].kind == TokenKind::kSymbol &&
        tokens_[pos_ + 1].text == "(") {
      next();
      next();
      ExprPtr cond = expression();
      expect_symbol(",");
      ExprPtr then_value = expression();
      expect_symbol(",");
      ExprPtr else_value = expression();
      expect_symbol(")");
      return Expr::mux(std::move(cond), std::move(then_value),
                       std::move(else_value));
    }
    if (peek().kind == TokenKind::kIdentifier) {
      if (constants_.contains(peek().text)) {
        return Expr::literal_of(constants_.at(next().text));
      }
      return Expr::variable(next().text);
    }
    if (at_symbol("(")) {
      next();
      ExprPtr e = expression();
      expect_symbol(")");
      return e;
    }
    fail("expected expression");
  }

  // --- semantic validation ---------------------------------------------------
  void validate_references(const Program& p) const {
    std::set<std::string> readable(p.inputs.begin(), p.inputs.end());
    readable.insert(p.variables.begin(), p.variables.end());
    std::set<std::string> writable(p.outputs.begin(), p.outputs.end());
    writable.insert(p.variables.begin(), p.variables.end());
    validate_block(p.body, readable, writable);
  }

  void validate_block(const Block& block, const std::set<std::string>& readable,
                      const std::set<std::string>& writable) const {
    for (const StmtPtr& s : block.stmts) {
      switch (s->kind) {
        case StmtKind::kAssign:
          if (!writable.contains(s->target)) {
            throw ParseError("cannot assign to '" + s->target +
                                 "' (not a var or out)",
                             0, 0);
          }
          validate_expr(*s->value, readable);
          break;
        case StmtKind::kIf:
          validate_expr(*s->cond, readable);
          validate_block(s->body, readable, writable);
          validate_block(s->els, readable, writable);
          break;
        case StmtKind::kWhile:
          validate_expr(*s->cond, readable);
          validate_block(s->body, readable, writable);
          break;
        case StmtKind::kPar:
          for (const Block& branch : s->branches) {
            validate_block(branch, readable, writable);
          }
          break;
      }
    }
  }

  void validate_expr(const Expr& e,
                     const std::set<std::string>& readable) const {
    switch (e.kind) {
      case ExprKind::kLiteral: return;
      case ExprKind::kVariable:
        if (!readable.contains(e.name)) {
          throw ParseError("'" + e.name + "' is not a readable var or in", 0,
                           0);
        }
        return;
      case ExprKind::kUnary: validate_expr(*e.lhs, readable); return;
      case ExprKind::kBinary:
        validate_expr(*e.lhs, readable);
        validate_expr(*e.rhs, readable);
        return;
      case ExprKind::kMux:
        validate_expr(*e.lhs, readable);
        validate_expr(*e.rhs, readable);
        validate_expr(*e.third, readable);
        return;
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::set<std::string> seen_names_;
  std::map<std::string, std::int64_t> constants_;
  Program* program_ = nullptr;
  int repeat_counter_ = 0;
  std::vector<StmtPtr> pending_stmts_;
};

}  // namespace

Program parse_program(std::string_view source) {
  return Parser(source).program();
}

ExprPtr parse_expression(std::string_view source) {
  return Parser(source).expression_only();
}

}  // namespace camad::synth
