// CAMAD-style iterative design-space exploration (Sec 5).
//
// The optimizer holds the compiler's serial "preliminary design" as the
// master and explores *merge sets*: which control-invariant vertex
// mergers (Def 4.6) to apply before re-deriving the parallel schedule
// with the data-invariant chain parallelization (Defs 4.3-4.5).
// Serialization never needs its own transformation — the serial master
// already carries the total order, and resource conflicts introduced by
// a merger automatically keep the unit's users sequential when the
// design is re-parallelized. This mirrors the paper's loop: "the
// synthesis algorithm starts with a preliminary design and transforms it
// step by step towards an optimal one", guided by cost analysis.
//
// Each candidate configuration is evaluated on real numbers: estimated
// area (module library + steering muxes) and measured execution time
// (simulated cycles × estimated cycle time). Greedy steepest-descent
// accepts the merger that most improves the weighted objective; the
// area-weight λ sweeps out the area/delay trade-off curve (E3).
#pragma once

#include <string>
#include <vector>

#include "dcf/system.h"
#include "semantics/analysis.h"
#include "synth/cost.h"
#include "synth/library.h"

namespace camad::synth {

struct Metrics {
  double area = 0;
  double mean_cycles = 0;
  double cycle_time = 0;
  double time_ns = 0;
};

struct OptimizerOptions {
  /// Objective = λ·(area/area₀) + (1-λ)·(time/time₀); λ ∈ [0,1].
  double area_weight = 0.5;
  std::size_t max_steps = 64;
  MeasureOptions measure;
  /// Verify each accepted step by differential simulation (slow, for
  /// tests and paranoid runs).
  bool verify_steps = false;
  /// Post-passes evaluated after the merge loop and kept when they
  /// improve the objective: register sharing (live-range coalescing,
  /// saves register+mux area but may serialize the schedule through the
  /// shared registers) and control-state chaining (merges independent
  /// adjacent states, saving cycles at zero area cost).
  bool try_register_sharing = true;
  bool try_chaining = true;
  /// Share one semantics::AnalysisCache across the merge-pair sweep: the
  /// Def 4.6 merger preserves the control net, so reachability,
  /// concurrency and structural order are explored once per accepted
  /// step instead of once per candidate. Off = recompute everything per
  /// candidate (the pre-cache behaviour; results are identical).
  bool use_analysis_cache = true;
  /// Worker threads for candidate evaluation (0 = hardware concurrency,
  /// 1 = serial). Candidates are independent and selection is a
  /// deterministic earliest-index argmin, so results are identical
  /// whatever the count.
  std::size_t eval_threads = 0;
};

struct OptimizerStep {
  std::string description;
  Metrics metrics;
  double objective = 0;
};

struct OptimizerResult {
  dcf::System best;            ///< parallelized best configuration
  dcf::System serial_master;   ///< merged serial design behind `best`
  Metrics initial;             ///< parallelized, no mergers
  Metrics final;
  std::vector<OptimizerStep> steps;
  std::size_t merges_applied = 0;
  /// Search-wide telemetry: plan-cache activity summed over every
  /// candidate measurement, the shared analysis cache's lifetime
  /// hit/miss/transfer counts, and the number of candidate evaluations.
  sim::SimStats sim_stats;
  semantics::AnalysisCacheStats analysis_stats;
  std::size_t candidates_evaluated = 0;
};

/// `sim_stats`, when non-null, receives the measurement's summed
/// plan-cache activity.
Metrics evaluate(const dcf::System& system, const ModuleLibrary& lib,
                 const MeasureOptions& options,
                 sim::SimStats* sim_stats = nullptr);

/// The schedule every search strategy derives from a serial master:
/// chain parallelization followed by control cleanup (the fork/join
/// realization and compilation leave pass-through control-only states).
/// The cached overload (cache bound to `master`) reuses the master's
/// dependence relation.
dcf::System derive_schedule(const dcf::System& master);
dcf::System derive_schedule(const dcf::System& master,
                            const semantics::AnalysisCache& cache);

/// Optimizes a *serial* compiled design. Throws TransformError if
/// verification is enabled and a step fails it.
OptimizerResult optimize(const dcf::System& serial, const ModuleLibrary& lib,
                         const OptimizerOptions& options = {});

struct StochasticOptions {
  OptimizerOptions base;
  std::size_t restarts = 4;
  std::uint64_t seed = 1;
};

/// Search-strategy alternative: random-restart stochastic descent. Each
/// restart walks a random sequence of *improving* mergers (first
/// improving candidate in shuffled order, rather than the best), then
/// applies the same post-passes; the best restart wins. Trades the
/// greedy search's O(pairs²) evaluations per step for more, cheaper
/// walks — and can escape greedy's myopia on rugged objectives. Compared
/// against plain `optimize` in bench_tradeoff.
OptimizerResult optimize_stochastic(const dcf::System& serial,
                                    const ModuleLibrary& lib,
                                    const StochasticOptions& options = {});

}  // namespace camad::synth
