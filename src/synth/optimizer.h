// CAMAD-style iterative design-space exploration (Sec 5).
//
// The optimizer holds the compiler's serial "preliminary design" as the
// master and explores *merge sets*: which control-invariant vertex
// mergers (Def 4.6) to apply before re-deriving the parallel schedule
// with the data-invariant chain parallelization (Defs 4.3-4.5).
// Serialization never needs its own transformation — the serial master
// already carries the total order, and resource conflicts introduced by
// a merger automatically keep the unit's users sequential when the
// design is re-parallelized. This mirrors the paper's loop: "the
// synthesis algorithm starts with a preliminary design and transforms it
// step by step towards an optimal one", guided by cost analysis.
//
// Each candidate configuration is evaluated on real numbers: estimated
// area (module library + steering muxes) and measured execution time
// (simulated cycles × estimated cycle time). Greedy steepest-descent
// accepts the merger that most improves the weighted objective; the
// area-weight λ sweeps out the area/delay trade-off curve (E3).
#pragma once

#include <string>
#include <vector>

#include "dcf/system.h"
#include "semantics/analysis.h"
#include "semantics/equivalence.h"
#include "synth/cost.h"
#include "synth/frontier.h"
#include "synth/library.h"

namespace camad::serve {
class Budget;  // serve/budget.h — std-only, safe for any layer
}

namespace camad::synth {

struct OptimizerOptions {
  /// Objective = λ·(area/area₀) + (1-λ)·(time/time₀); λ ∈ [0,1].
  double area_weight = 0.5;
  std::size_t max_steps = 64;
  MeasureOptions measure;
  /// Verify each accepted step by differential simulation (slow, for
  /// tests and paranoid runs).
  bool verify_steps = false;
  /// Post-passes evaluated after the merge loop and kept when they
  /// improve the objective: register sharing (live-range coalescing,
  /// saves register+mux area but may serialize the schedule through the
  /// shared registers) and control-state chaining (merges independent
  /// adjacent states, saving cycles at zero area cost).
  bool try_register_sharing = true;
  bool try_chaining = true;
  /// Share one semantics::AnalysisCache across the merge-pair sweep: the
  /// Def 4.6 merger preserves the control net, so reachability,
  /// concurrency and structural order are explored once per accepted
  /// step instead of once per candidate. Off = recompute everything per
  /// candidate (the pre-cache behaviour; results are identical).
  bool use_analysis_cache = true;
  /// Worker threads for candidate evaluation (0 = hardware concurrency,
  /// 1 = serial). Candidates are independent and selection is a
  /// deterministic earliest-index argmin, so results are identical
  /// whatever the count.
  std::size_t eval_threads = 0;
};

struct OptimizerStep {
  std::string description;
  Metrics metrics;
  double objective = 0;
};

struct OptimizerResult {
  dcf::System best;            ///< parallelized best configuration
  dcf::System serial_master;   ///< merged serial design behind `best`
  Metrics initial;             ///< parallelized, no mergers
  Metrics final;
  std::vector<OptimizerStep> steps;
  std::size_t merges_applied = 0;
  /// Search-wide telemetry: plan-cache activity summed over every
  /// candidate measurement, the shared analysis cache's lifetime
  /// hit/miss/transfer counts, and the number of candidate evaluations.
  sim::SimStats sim_stats;
  semantics::AnalysisCacheStats analysis_stats;
  std::size_t candidates_evaluated = 0;
};

/// `sim_stats`, when non-null, receives the measurement's summed
/// plan-cache activity.
Metrics evaluate(const dcf::System& system, const ModuleLibrary& lib,
                 const MeasureOptions& options,
                 sim::SimStats* sim_stats = nullptr);

/// The schedule every search strategy derives from a serial master:
/// chain parallelization followed by control cleanup (the fork/join
/// realization and compilation leave pass-through control-only states).
/// The cached overload (cache bound to `master`) reuses the master's
/// dependence relation.
dcf::System derive_schedule(const dcf::System& master);
dcf::System derive_schedule(const dcf::System& master,
                            const semantics::AnalysisCache& cache);

/// Optimizes a *serial* compiled design. Throws TransformError if
/// verification is enabled and a step fails it.
OptimizerResult optimize(const dcf::System& serial, const ModuleLibrary& lib,
                         const OptimizerOptions& options = {});

struct StochasticOptions {
  OptimizerOptions base;
  std::size_t restarts = 4;
  std::uint64_t seed = 1;
};

/// Search-strategy alternative: random-restart stochastic descent. Each
/// restart walks a random sequence of *improving* mergers (first
/// improving candidate in shuffled order, rather than the best), then
/// applies the same post-passes; the best restart wins. Trades the
/// greedy search's O(pairs²) evaluations per step for more, cheaper
/// walks — and can escape greedy's myopia on rugged objectives. Compared
/// against plain `optimize` in bench_optimizer.
OptimizerResult optimize_stochastic(const dcf::System& serial,
                                    const ModuleLibrary& lib,
                                    const StochasticOptions& options = {});

/// Reference corner for the normalized hypervolume: (area, time) are
/// divided by the initial (parallelized, untransformed) metrics, and the
/// dominated region is measured against (1.1, 1.1) — a 10% margin so the
/// initial point itself contributes positively.
inline constexpr double kHypervolumeRef = 1.1;

struct ParetoOptions {
  /// Candidates carried between generations. The frontier itself is not
  /// truncated to the beam — every evaluated successor competes for it.
  std::size_t beam_width = 6;
  std::size_t generations = 64;
  /// Stop after this many consecutive generations without a frontier
  /// insertion (merge-rich designs insert every generation until the
  /// merge supply is exhausted, so this triggers only at convergence).
  std::size_t stall_generations = 2;
  MeasureOptions measure;
  /// Worker threads for expansion/measurement fan-out (0 = hardware).
  /// The frontier is byte-identical at any count: jobs are enumerated in
  /// a fixed total order, workers only fill indexed slots, and every
  /// dedup / insertion / selection decision happens serially in job
  /// order (the PR 3 argmin discipline, generalized).
  std::size_t eval_threads = 0;
  bool use_analysis_cache = true;
  /// Check every reported frontier point equivalent to the seed via the
  /// Def 4.1 differential oracle; a failure throws TransformError naming
  /// the point's provenance.
  bool verify_frontier = true;
  semantics::DifferentialOptions verify;
  /// Split actions enumerated per candidate per generation (splits
  /// mostly re-open merged routes; a small cap keeps them from
  /// dominating the job list).
  std::size_t max_split_actions = 8;
  /// Scalarization grid for the reserved beam slots: for each λ the
  /// earliest-index argmin of λ·area_norm + (1-λ)·time_norm survives,
  /// so the beam always carries the pure-area, pure-time and balanced
  /// descent directions; remaining slots fill by non-domination rank.
  std::vector<double> lambda_grid = {0.0, 0.25, 0.5, 0.75, 1.0};
  /// Per-request deadline/cancellation, polled at every generation
  /// boundary. Null = unlimited. A budget-stopped search returns the
  /// frontier accumulated so far (always well-formed — it contains at
  /// least the initial point) with ParetoResult::budget_exhausted set.
  const serve::Budget* budget = nullptr;
};

struct ParetoResult {
  /// Non-dominated points in area-ascending order, every one verified
  /// against the seed when verify_frontier is set.
  std::vector<FrontierPoint> frontier;
  Metrics initial;  ///< parallelized, no transformations
  /// Normalized staircase hypervolume w.r.t. kHypervolumeRef (see
  /// above); larger is better, 0 means even the initial point fell
  /// outside the reference box.
  double hypervolume = 0;
  std::size_t candidates_evaluated = 0;  ///< measured schedules
  std::size_t dedup_hits = 0;   ///< successors skipped by design_hash
  std::size_t generations_run = 0;
  std::size_t verified_points = 0;
  /// Approximate resident footprint of the returned frontier in bytes
  /// (serialized size of each point's master + scheduled system plus the
  /// point struct itself) — the synth.frontier.bytes memory gauge.
  std::size_t frontier_bytes = 0;
  sim::SimStats sim_stats;
  semantics::AnalysisCacheStats analysis_stats;
  /// The search stopped because ParetoOptions::budget was exhausted; the
  /// frontier is the well-formed prefix explored before the cutoff.
  bool budget_exhausted = false;
  /// Why the generation loop ended: "converged" (stall), "generations"
  /// (cap reached), or the budget's reason ("budget-deadline" /
  /// "budget-cancelled").
  std::string stop_reason;
};

/// Multi-objective beam search over the transformation vocabulary
/// (merge / split / regshare / chain) from a *serial* compiled design.
/// Deterministic at any eval_threads; throws TransformError if a
/// frontier point fails the Def 4.1 check.
ParetoResult optimize_pareto(const dcf::System& serial,
                             const ModuleLibrary& lib,
                             const ParetoOptions& options = {});

/// Deterministic JSON rendering of a ParetoResult (design name, initial
/// metrics, hypervolume, per-point metrics + provenance + design hash).
/// Shared by `camadc optimize --frontier-out`, bench_optimizer and the
/// thread-invariance tests, which byte-compare it across thread counts.
std::string frontier_to_json(const ParetoResult& result,
                             const std::string& design_name);

}  // namespace camad::synth
