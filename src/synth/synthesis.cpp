#include "synth/synthesis.h"

#include <sstream>

#include "semantics/equivalence.h"
#include "synth/fold.h"
#include "synth/netlist.h"
#include "synth/parser.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/table.h"

namespace camad::synth {

SynthesisResult synthesize(std::string_view source,
                           const SynthesisOptions& options) {
  SynthesisResult result;
  result.program = parse_program(source);
  if (options.fold_constants) fold_constants(result.program);
  result.serial = compile(result.program, &result.compile_stats);

  dcf::require_properly_designed(result.serial, options.check);

  result.optimization =
      optimize(result.serial, options.library, options.optimizer);
  result.optimized = result.optimization.best;

  dcf::require_properly_designed(result.optimized, options.check);
  if (options.verify_result) {
    semantics::DifferentialOptions diff;
    diff.environments = 4;
    diff.value_lo = options.optimizer.measure.value_lo;
    diff.value_hi = options.optimizer.measure.value_hi;
    diff.sim.max_cycles = options.optimizer.measure.max_cycles;
    const semantics::EquivalenceVerdict verdict =
        semantics::differential_equivalence(result.serial, result.optimized,
                                            diff);
    if (!verdict.holds) {
      throw TransformError("synthesis verification failed: " + verdict.why);
    }
  }

  result.netlist = emit_netlist(result.optimized, options.library);

  Table table({"design point", "area", "cycles", "cycle ns", "time ns",
               "objective"});
  for (const OptimizerStep& step : result.optimization.steps) {
    table.add_row({step.description, format_double(step.metrics.area, 0),
                   format_double(step.metrics.mean_cycles, 1),
                   format_double(step.metrics.cycle_time, 1),
                   format_double(step.metrics.time_ns, 0),
                   format_double(step.objective, 4)});
  }
  std::ostringstream os;
  os << "synthesis of '" << result.program.name << "': "
     << result.compile_stats.states << " states, "
     << result.compile_stats.functional_units << " functional units, "
     << result.compile_stats.registers << " registers\n"
     << table.to_string();
  result.report = os.str();
  return result;
}

}  // namespace camad::synth
