#include "synth/designs.h"

namespace camad::synth {

std::string_view gcd_source() {
  return R"(design gcd {
  in a, b;
  out g;
  var x, y;
  begin
    x := a;
    y := b;
    while x != y {
      if x > y {
        x := x - y;
      } else {
        y := y - x;
      }
    }
    g := x;
  end
})";
}

std::string_view diffeq_source() {
  // HAL benchmark: y'' + 3xy' + 3y = 0 solved by forward Euler.
  return R"(design diffeq {
  in a_in, dx_in, x_in, u_in, y_in;
  out x_out, y_out, u_out;
  var a, dx, x, u, y, x1, u1, y1;
  begin
    a := a_in;
    dx := dx_in;
    x := x_in;
    u := u_in;
    y := y_in;
    while x < a {
      x1 := x + dx;
      u1 := u - ((3 * x) * (u * dx)) - ((3 * y) * dx);
      y1 := y + (u * dx);
      x := x1;
      u := u1;
      y := y1;
    }
    x_out := x;
    y_out := y;
    u_out := u;
  end
})";
}

std::string_view ewf_source() {
  // Straight-line wave-filter-like kernel: two cascaded biquad-ish
  // sections plus output combination; 26 additions, 8 multiplications.
  return R"(design ewf {
  in s_in, c1, c2, c3, c4;
  out s_out;
  var x, v1, v2, v3, v4, v5, v6, v7;
  var t1, t2, t3, t4, t5, t6, t7, t8, t9;
  begin
    x := s_in;
    t1 := x + v1;
    t2 := t1 + v2;
    t3 := t2 * c1;
    t4 := t3 + v3;
    t5 := t4 + v4;
    t6 := t5 * c2;
    v1 := t6 + t1;
    v2 := t6 + t2;
    t7 := t6 + v5;
    t8 := t7 + v6;
    t9 := t8 * c3;
    v3 := t9 + t4;
    v4 := t9 + t5;
    v5 := t9 + t7;
    v6 := t9 + t8;
    t1 := v1 + v3;
    t2 := v2 + v4;
    t3 := t1 * c4;
    t4 := t2 * c4;
    t5 := t3 + t4;
    v7 := t5 + v7;
    t6 := v7 * c1;
    t7 := t6 + t3;
    t8 := t6 + t4;
    t9 := t7 + t8;
    v1 := v1 + t9;
    v2 := v2 + t9;
    t1 := t9 * c2;
    t2 := t1 * c3;
    t3 := t2 + v5;
    t4 := t3 + v6;
    t5 := t4 + t2;
    s_out := t5;
  end
})";
}

std::string_view fir_source() {
  return R"(design fir8 {
  in sample;
  out y;
  var x0, x1, x2, x3, x4, x5, x6, x7;
  var acc, n;
  begin
    x0 := 0; x1 := 0; x2 := 0; x3 := 0;
    x4 := 0; x5 := 0; x6 := 0; x7 := 0;
    n := 8;
    while n > 0 {
      x7 := x6;
      x6 := x5;
      x5 := x4;
      x4 := x3;
      x3 := x2;
      x2 := x1;
      x1 := x0;
      x0 := sample;
      acc := ((x0 * 4 + x1 * 9) + (x2 * 15 + x3 * 18))
           + ((x4 * 18 + x5 * 15) + (x6 * 9 + x7 * 4));
      y := acc;
      n := n - 1;
    }
  end
})";
}

std::string_view traffic_source() {
  // Four-phase light controller: phase advances when the timer expires,
  // the side-road sensor shortens the main-green phase.
  return R"(design traffic {
  in sensor;
  out light;
  var phase, timer, rounds, s;
  begin
    phase := 0;
    rounds := 12;
    timer := 4;
    while rounds > 0 {
      s := sensor;
      if phase == 0 {
        if s > 50 {
          timer := timer - 2;
        } else {
          timer := timer - 1;
        }
      } else {
        timer := timer - 1;
      }
      if timer <= 0 {
        phase := (phase + 1) % 4;
        if phase == 0 {
          timer := 4;
        } else {
          timer := 2;
        }
        light := phase;
      } else {
        light := phase;
      }
      rounds := rounds - 1;
    }
  end
})";
}

std::string_view parlab_source() {
  return R"(design parlab {
  in a, b, c, d;
  out p, q;
  var w, x, y, z;
  begin
    par {
      branch {
        w := a * b;
        x := w + a;
      }
      branch {
        y := c * d;
        z := y + c;
      }
    }
    p := x + z;
    q := x - z;
  end
})";
}

std::vector<NamedDesign> all_designs() {
  return {
      {"gcd", gcd_source()},       {"diffeq", diffeq_source()},
      {"ewf", ewf_source()},       {"fir8", fir_source()},
      {"traffic", traffic_source()}, {"parlab", parlab_source()},
  };
}

}  // namespace camad::synth
