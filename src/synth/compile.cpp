#include "synth/compile.h"

#include <map>
#include <variant>

#include "synth/parser.h"
#include "util/error.h"

namespace camad::synth {
namespace {

using dcf::ArcId;
using dcf::OpCode;
using dcf::PortId;
using dcf::VertexId;
using petri::PlaceId;
using petri::TransitionId;

/// A fragment's loose end: either a resting place (needs a transition to
/// leave) or a dangling transition (needs a post place to arrive).
using End = std::variant<PlaceId, TransitionId>;

struct Fragment {
  PlaceId entry;
  std::vector<End> ends;
};

class Compiler {
 public:
  explicit Compiler(const Program& program) : program_(program) {}

  dcf::System run(CompileStats* stats) {
    for (const std::string& name : program_.inputs) {
      symbols_[name] = dp_.add_input(name);
    }
    for (const std::string& name : program_.outputs) {
      symbols_[name] = dp_.add_output(name);
    }
    for (const std::string& name : program_.variables) {
      symbols_[name] = dp_.add_register(name);
      ++stats_.registers;
    }
    if (program_.body.stmts.empty()) {
      throw ModelError("compile: empty design body");
    }

    const Fragment body = compile_block(program_.body);
    cn_.net().set_initial_tokens(body.entry, 1);
    // Loose place-ends get a terminating transition (empty post-set);
    // dangling transitions terminate as they are.
    for (const End& end : body.ends) {
      if (const auto* place = std::get_if<PlaceId>(&end)) {
        const TransitionId t = cn_.add_transition(fresh("Tend"));
        cn_.net().connect(*place, t);
      }
    }

    stats_.states = cn_.net().place_count();
    stats_.transitions = cn_.net().transition_count();
    if (stats != nullptr) *stats = stats_;

    dcf::System system(std::move(dp_), std::move(cn_), program_.name);
    system.validate();
    return system;
  }

 private:
  std::string fresh(const std::string& base) {
    return base + "_" + std::to_string(counter_++);
  }

  // --- expression lowering --------------------------------------------------
  /// Lowers `e` into fresh units whose arcs are controlled by `state`;
  /// returns the output port carrying the expression's value while
  /// `state` is marked.
  PortId lower_expr(const Expr& e, PlaceId state) {
    switch (e.kind) {
      case ExprKind::kLiteral: {
        const VertexId c = dp_.add_constant(
            fresh("c" + std::to_string(e.literal)), e.literal);
        ++stats_.constants;
        return dp_.output_ports(c)[0];
      }
      case ExprKind::kVariable: {
        const VertexId v = symbols_.at(e.name);
        if (dp_.kind(v) == dcf::VertexKind::kOutput) {
          throw ModelError("compile: output '" + e.name + "' is write-only");
        }
        return dp_.output_ports(v)[0];
      }
      case ExprKind::kUnary: {
        const VertexId unit =
            dp_.add_unit(fresh(std::string(dcf::op_name(e.op))), e.op);
        ++stats_.functional_units;
        connect_controlled(lower_expr(*e.lhs, state),
                           dp_.input_ports(unit)[0], state);
        return dp_.output_ports(unit)[0];
      }
      case ExprKind::kBinary: {
        const VertexId unit =
            dp_.add_unit(fresh(std::string(dcf::op_name(e.op))), e.op);
        ++stats_.functional_units;
        connect_controlled(lower_expr(*e.lhs, state),
                           dp_.input_ports(unit)[0], state);
        connect_controlled(lower_expr(*e.rhs, state),
                           dp_.input_ports(unit)[1], state);
        return dp_.output_ports(unit)[0];
      }
      case ExprKind::kMux: {
        const VertexId unit = dp_.add_unit(fresh("mux"), OpCode::kMux);
        ++stats_.functional_units;
        connect_controlled(lower_expr(*e.lhs, state),
                           dp_.input_ports(unit)[0], state);
        connect_controlled(lower_expr(*e.rhs, state),
                           dp_.input_ports(unit)[1], state);
        connect_controlled(lower_expr(*e.third, state),
                           dp_.input_ports(unit)[2], state);
        return dp_.output_ports(unit)[0];
      }
    }
    throw ModelError("compile: unreachable expression kind");
  }

  void connect_controlled(PortId from, PortId to, PlaceId state) {
    const ArcId arc = dp_.add_arc(from, to);
    cn_.control(state, arc);
  }

  /// Test-state scaffolding shared by if/while: lowers the condition in
  /// `state`, latches it into a flag register (Def 3.2 rule 5) and builds
  /// the kNot complement. Returns {positive guard port, negative}.
  std::pair<PortId, PortId> lower_condition(const Expr& cond, PlaceId state) {
    const PortId root = lower_expr(cond, state);
    const VertexId flag = dp_.add_register(fresh("flag"));
    ++stats_.registers;
    connect_controlled(root, dp_.input_ports(flag)[0], state);
    const VertexId inv = dp_.add_unit(fresh("not"), OpCode::kNot);
    ++stats_.functional_units;
    connect_controlled(root, dp_.input_ports(inv)[0], state);
    return {root, dp_.output_ports(inv)[0]};
  }

  // --- statement lowering ------------------------------------------------------
  /// Connects every loose end of `fragment` to the place `to`.
  void attach(const std::vector<End>& ends, PlaceId to) {
    for (const End& end : ends) {
      if (const auto* place = std::get_if<PlaceId>(&end)) {
        const TransitionId t = cn_.add_transition(fresh("T"));
        cn_.net().connect(*place, t);
        cn_.net().connect(t, to);
      } else {
        cn_.net().connect(std::get<TransitionId>(end), to);
      }
    }
  }

  Fragment compile_block(const Block& block) {
    Fragment result;
    bool first = true;
    for (const StmtPtr& stmt : block.stmts) {
      Fragment f = compile_stmt(*stmt);
      if (first) {
        result.entry = f.entry;
        first = false;
      } else {
        attach(result.ends, f.entry);
      }
      result.ends = std::move(f.ends);
    }
    if (first) {
      // Empty block (e.g. missing else): a control-only pass-through state.
      const PlaceId s = cn_.add_state(fresh("Snop"));
      result.entry = s;
      result.ends = {End{s}};
    }
    return result;
  }

  Fragment compile_stmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kAssign: {
        const PlaceId s = cn_.add_state(fresh("S_" + stmt.target));
        const PortId value = lower_expr(*stmt.value, s);
        const VertexId target = symbols_.at(stmt.target);
        if (dp_.kind(target) == dcf::VertexKind::kInput) {
          throw ModelError("compile: input '" + stmt.target +
                           "' is read-only");
        }
        connect_controlled(value, dp_.input_ports(target)[0], s);
        return Fragment{s, {End{s}}};
      }
      case StmtKind::kIf: {
        const PlaceId s_test = cn_.add_state(fresh("Sif"));
        const auto [pos, neg] = lower_condition(*stmt.cond, s_test);

        const Fragment then_frag = compile_block(stmt.body);
        const TransitionId t_then = cn_.add_transition(fresh("Tthen"));
        cn_.guard(t_then, pos);
        cn_.net().connect(s_test, t_then);
        cn_.net().connect(t_then, then_frag.entry);

        Fragment result{s_test, then_frag.ends};
        if (stmt.els.stmts.empty()) {
          const TransitionId t_else = cn_.add_transition(fresh("Tskip"));
          cn_.guard(t_else, neg);
          cn_.net().connect(s_test, t_else);
          result.ends.push_back(End{t_else});
        } else {
          const Fragment else_frag = compile_block(stmt.els);
          const TransitionId t_else = cn_.add_transition(fresh("Telse"));
          cn_.guard(t_else, neg);
          cn_.net().connect(s_test, t_else);
          cn_.net().connect(t_else, else_frag.entry);
          result.ends.insert(result.ends.end(), else_frag.ends.begin(),
                             else_frag.ends.end());
        }
        return result;
      }
      case StmtKind::kWhile: {
        const PlaceId s_test = cn_.add_state(fresh("Swhile"));
        const auto [pos, neg] = lower_condition(*stmt.cond, s_test);

        const Fragment body = compile_block(stmt.body);
        const TransitionId t_body = cn_.add_transition(fresh("Tloop"));
        cn_.guard(t_body, pos);
        cn_.net().connect(s_test, t_body);
        cn_.net().connect(t_body, body.entry);
        attach(body.ends, s_test);  // back edge

        const TransitionId t_exit = cn_.add_transition(fresh("Texit"));
        cn_.guard(t_exit, neg);
        cn_.net().connect(s_test, t_exit);
        return Fragment{s_test, {End{t_exit}}};
      }
      case StmtKind::kPar: {
        const PlaceId s_fork = cn_.add_state(fresh("Spar"));
        const TransitionId t_fork = cn_.add_transition(fresh("Tfork"));
        cn_.net().connect(s_fork, t_fork);
        const TransitionId t_join = cn_.add_transition(fresh("Tjoin"));
        for (const Block& branch : stmt.branches) {
          const Fragment f = compile_block(branch);
          cn_.net().connect(t_fork, f.entry);
          // Each branch funnels into one join input. A single place-end
          // feeds the join directly; anything else goes through a
          // control-only collector place.
          if (f.ends.size() == 1 &&
              std::holds_alternative<PlaceId>(f.ends[0])) {
            cn_.net().connect(std::get<PlaceId>(f.ends[0]), t_join);
          } else {
            const PlaceId collect = cn_.add_state(fresh("Sjoin"));
            attach(f.ends, collect);
            cn_.net().connect(collect, t_join);
          }
        }
        return Fragment{s_fork, {End{t_join}}};
      }
    }
    throw ModelError("compile: unreachable statement kind");
  }

  const Program& program_;
  dcf::DataPath dp_;
  dcf::ControlNet cn_;
  std::map<std::string, VertexId> symbols_;
  CompileStats stats_;
  int counter_ = 0;
};

}  // namespace

dcf::System compile(const Program& program, CompileStats* stats) {
  return Compiler(program).run(stats);
}

dcf::System compile_source(std::string_view source, CompileStats* stats) {
  return compile(parse_program(source), stats);
}

}  // namespace camad::synth
