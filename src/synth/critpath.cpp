#include "synth/critpath.h"

#include <algorithm>
#include <sstream>

#include "graph/algorithms.h"
#include "graph/digraph.h"
#include "synth/cost.h"
#include "util/error.h"
#include "util/strings.h"

namespace camad::synth {

std::vector<double> state_delays(const dcf::System& system,
                                 const ModuleLibrary& lib) {
  const dcf::DataPath& dp = system.datapath();
  const petri::Net& net = system.control().net();
  const double scale = 100.0;
  std::vector<double> delays(net.place_count(), 0);

  for (petri::PlaceId s : net.places()) {
    graph::Digraph g(dp.port_count());
    std::vector<std::int64_t> weight(dp.port_count(), 0);
    std::vector<bool> active(dp.vertex_count(), false);
    for (dcf::ArcId a : system.control().controlled_arcs(s)) {
      g.add_edge(graph::NodeId(dp.arc_source(a).value()),
                 graph::NodeId(dp.arc_target(a).value()));
      active[dp.arc_source_vertex(a).index()] = true;
      active[dp.arc_target_vertex(a).index()] = true;
    }
    for (dcf::VertexId v : dp.vertices()) {
      if (!active[v.index()]) continue;
      for (dcf::PortId o : dp.output_ports(v)) {
        const dcf::Operation& op = dp.operation(o);
        weight[o.index()] = static_cast<std::int64_t>(
            lib.module_for(op.code).delay * scale);
        if (dcf::op_is_sequential(op.code)) continue;
        const int arity = dcf::op_arity(op.code);
        const auto& ins = dp.input_ports(v);
        for (int k = 0; k < arity; ++k) {
          g.add_edge(graph::NodeId(ins[static_cast<std::size_t>(k)].value()),
                     graph::NodeId(o.value()));
        }
      }
      for (dcf::PortId in : dp.input_ports(v)) {
        if (dp.arcs_into(in).size() > 1) {
          weight[in.index()] =
              static_cast<std::int64_t>(lib.mux_delay() * scale);
        }
      }
    }
    try {
      delays[s.index()] =
          static_cast<double>(graph::longest_path(g, weight).best) / scale;
    } catch (const ModelError&) {
      delays[s.index()] = 1e9;  // active combinational loop
    }
  }
  return delays;
}

CriticalPathResult critical_path(const dcf::System& system,
                                 const ModuleLibrary& lib,
                                 const CriticalPathOptions& options) {
  const petri::Net& net = system.control().net();
  const std::size_t n = net.place_count();
  const std::vector<double> delays = state_delays(system, lib);

  // State graph -> SCC condensation weighted by (member delays × trips).
  graph::Digraph states(n);
  for (petri::TransitionId t : net.transitions()) {
    for (petri::PlaceId pre : net.pre(t)) {
      for (petri::PlaceId post : net.post(t)) {
        states.add_edge(graph::NodeId(pre.value()),
                        graph::NodeId(post.value()));
      }
    }
  }
  const graph::SccResult scc = graph::strongly_connected_components(states);

  std::vector<std::vector<std::size_t>> members(scc.count);
  for (std::size_t v = 0; v < n; ++v) members[scc.component[v]].push_back(v);

  graph::Digraph condensation(scc.count);
  std::vector<bool> edge_seen(scc.count * scc.count, false);
  for (std::size_t v = 0; v < n; ++v) {
    for (graph::EdgeId e : states.out_edges(graph::NodeId(v))) {
      const std::size_t cu = scc.component[v];
      const std::size_t cv = scc.component[states.to(e).index()];
      if (cu == cv || edge_seen[cu * scc.count + cv]) continue;
      edge_seen[cu * scc.count + cv] = true;
      condensation.add_edge(graph::NodeId(cu), graph::NodeId(cv));
    }
  }

  const double scale = 100.0;
  std::vector<std::int64_t> comp_weight(scc.count, 0);
  for (std::size_t c = 0; c < scc.count; ++c) {
    double total = 0;
    for (std::size_t v : members[c]) total += delays[v];
    const bool is_loop =
        members[c].size() > 1 ||
        [&] {
          for (graph::EdgeId e :
               states.out_edges(graph::NodeId(members[c][0]))) {
            if (states.to(e).index() == members[c][0]) return true;
          }
          return false;
        }();
    if (is_loop) total *= options.loop_trip_count;
    comp_weight[c] = static_cast<std::int64_t>(total * scale);
  }

  const graph::LongestPathResult longest =
      graph::longest_path(condensation, comp_weight);
  const std::vector<graph::NodeId> path =
      graph::critical_path_nodes(condensation, longest);

  CriticalPathResult result;
  result.total_delay_ns = static_cast<double>(longest.best) / scale;
  for (graph::NodeId c : path) {
    // Representative state per component: the slowest member.
    const auto& group = members[c.index()];
    std::size_t best = group.front();
    for (std::size_t v : group) {
      if (delays[v] > delays[best]) best = v;
    }
    result.states.emplace_back(
        static_cast<petri::PlaceId::underlying_type>(best));
    result.state_delay_ns.push_back(delays[best]);
  }
  return result;
}

std::string CriticalPathResult::to_string(const dcf::System& system) const {
  std::ostringstream os;
  os << "critical path (" << format_double(total_delay_ns, 1) << " ns): ";
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (i != 0) os << " -> ";
    os << system.control().net().name(states[i]) << '('
       << format_double(state_delay_ns[i], 1) << ')';
  }
  return os.str();
}

}  // namespace camad::synth
