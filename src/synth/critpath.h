// Structural critical-path analysis over the control net.
//
// Section 5: "A critical path analysis technique is used ... to guide the
// transformation process." We weight every control state with its
// combinational path delay (from the module library), condense loops
// (SCCs of the state graph) with annotated trip counts, and take the
// longest path through the condensation. The result both estimates total
// execution time without simulating and names the states that dominate
// it — the ones the optimizer should leave un-merged.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dcf/system.h"
#include "synth/library.h"

namespace camad::synth {

struct CriticalPathOptions {
  /// Assumed iteration count for every loop (SCC) in the control net.
  /// CAMAD took these from designer annotations; we use one global knob.
  double loop_trip_count = 8.0;
};

struct CriticalPathResult {
  double total_delay_ns = 0;
  /// States on the critical path, in execution order. Loop members appear
  /// once (the condensation collapses them).
  std::vector<petri::PlaceId> states;
  /// Per-state delay (ns) aligned with `states`.
  std::vector<double> state_delay_ns;

  [[nodiscard]] std::string to_string(const dcf::System& system) const;
};

/// Longest-delay path through the control structure's condensation.
CriticalPathResult critical_path(const dcf::System& system,
                                 const ModuleLibrary& lib,
                                 const CriticalPathOptions& options = {});

/// Per-state combinational delay (ns) — the state's active-subgraph
/// longest path, as in estimate_cycle_time but reported per state.
std::vector<double> state_delays(const dcf::System& system,
                                 const ModuleLibrary& lib);

}  // namespace camad::synth
