// Constant folding over BDL ASTs.
//
// The compiler allocates a fresh constant vertex per literal and a fresh
// unit per operator occurrence, so `x := 3 * 4 + a` would synthesize a
// multiplier just to compute 12. Folding evaluates literal subtrees with
// the same interpretation the simulator uses (dcf::evaluate_op — wrapping
// arithmetic, ⊥ on division by zero) before lowering. Folding that would
// produce ⊥ (e.g. `1 / 0`) is left unfolded so the runtime semantics,
// including the undefined value, are preserved.
#pragma once

#include "synth/ast.h"

namespace camad::synth {

/// Returns a folded copy of the expression.
ExprPtr fold_expr(const Expr& expr);

/// Folds every expression in the program in place. Returns the number of
/// operator nodes eliminated.
std::size_t fold_constants(Program& program);

}  // namespace camad::synth
