// The benchmark designs, written in BDL.
//
// These reconstruct the classic late-1980s high-level-synthesis workloads
// that CAMAD-era papers evaluated on:
//   * gcd      — Euclid's subtractive GCD (loop + branch, control heavy)
//   * diffeq   — the HAL differential-equation solver (Paulin & Knight):
//                multiplier-rich loop body with real ILP
//   * ewf      — a 5th-order elliptic-wave-filter-like straight-line
//                kernel (add-dominated, long dependence chains). The
//                exact published DFG is not in the paper; this kernel
//                matches its op mix (26 add / 8 mul) and depth class.
//   * fir8     — 8-tap FIR filter over a shifting sample window
//   * traffic  — a traffic-light controller (branch-dominated FSM)
//   * parlab   — explicit `par` blocks (fork/join showcase)
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace camad::synth {

std::string_view gcd_source();
std::string_view diffeq_source();
std::string_view ewf_source();
std::string_view fir_source();
std::string_view traffic_source();
std::string_view parlab_source();

struct NamedDesign {
  std::string name;
  std::string_view source;
};

/// Every benchmark design, in canonical order.
std::vector<NamedDesign> all_designs();

}  // namespace camad::synth
