// BDL tokenizer.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace camad::synth {

enum class TokenKind : std::uint8_t {
  kIdentifier,
  kNumber,
  kKeyword,    // design in out var begin end if else while par branch
  kSymbol,     // punctuation and operators
  kEndOfFile,
};

struct Token {
  TokenKind kind;
  std::string text;
  std::int64_t number = 0;  // for kNumber
  int line = 1;
  int column = 1;
};

/// Tokenizes BDL source. `#` starts a comment to end of line.
/// Throws ParseError on illegal characters or malformed numbers.
std::vector<Token> tokenize(std::string_view source);

}  // namespace camad::synth
