// End-to-end synthesis driver: BDL source -> verified optimized design.
//
// The full CAMAD flow of Section 5:
//   1. compile the behavioural description to the serial preliminary
//      design (maximal resources, total order);
//   2. verify it is properly designed (Def 3.2) — "formal analysis
//      techniques can first be used ... before the synthesis process";
//   3. run the transformation-based optimizer (merge + re-parallelize)
//      under the given area/delay objective;
//   4. re-verify and emit the netlist.
#pragma once

#include <string>

#include "dcf/check.h"
#include "synth/compile.h"
#include "synth/optimizer.h"

namespace camad::synth {

struct SynthesisOptions {
  OptimizerOptions optimizer;
  /// Fold literal subexpressions before compiling (saves units that
  /// would compute constants).
  bool fold_constants = true;
  ModuleLibrary library = ModuleLibrary::standard();
  dcf::CheckOptions check;
  /// Differentially simulate the final design against the serial compile.
  bool verify_result = true;
};

struct SynthesisResult {
  Program program;
  dcf::System serial;       ///< preliminary design
  dcf::System optimized;    ///< final design
  CompileStats compile_stats;
  OptimizerResult optimization;
  std::string netlist;
  /// Summary table text (initial vs final metrics).
  std::string report;
};

/// Runs the whole flow; throws on parse errors, design-rule violations,
/// or (when verification is on) semantic divergence.
SynthesisResult synthesize(std::string_view source,
                           const SynthesisOptions& options = {});

}  // namespace camad::synth
