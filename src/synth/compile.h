// BDL -> data/control flow compiler: the "preliminary design" generator.
//
// The compile strategy reproduces CAMAD's starting point (Sec 5): maximal
// hardware, serial control. Concretely:
//   * every `in`/`out` becomes an external vertex, every `var` a register;
//   * every operator *occurrence* gets a fresh functional unit and every
//     literal a fresh constant vertex — sharing is introduced later by
//     control-invariant mergers, never assumed;
//   * every assignment becomes one control state that opens the whole
//     register -> expression tree -> register path (so dom(S) includes all
//     sources, which the dependence analysis relies on);
//   * `if`/`while` conditions compile into a predicate tree active in the
//     test state, guarding the branch transitions with the tree root and
//     its kNot complement (the pattern dcf::check proves conflict-free),
//     plus a flag register latch to satisfy Def 3.2 rule 5;
//   * `par` compiles to an explicit fork/join;
//   * statements chain serially; the final transition has an empty
//     post-set so the net terminates with zero tokens (Def 3.1 rule 6).
#pragma once

#include "dcf/system.h"
#include "synth/ast.h"

namespace camad::synth {

struct CompileStats {
  std::size_t states = 0;
  std::size_t transitions = 0;
  std::size_t functional_units = 0;  ///< COM vertices created
  std::size_t registers = 0;
  std::size_t constants = 0;
};

/// Compiles a program into a properly designed serial system.
/// Throws ModelError / DesignRuleError if the program produces an
/// improper design (e.g. a `par` whose branches write the same variable).
dcf::System compile(const Program& program, CompileStats* stats = nullptr);

/// Convenience: parse + compile.
dcf::System compile_source(std::string_view source,
                           CompileStats* stats = nullptr);

}  // namespace camad::synth
