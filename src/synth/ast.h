// Abstract syntax of BDL, the small behavioural design language.
//
// BDL reconstructs the role of CAMAD's algorithmic input notation: a
// structured imperative language whose constructs map one-to-one onto
// control-net shapes (sequence, guarded branch, loop, explicit
// parallelism). Example:
//
//   design gcd {
//     in a, b;
//     out g;
//     var x, y;
//     begin
//       x := a;
//       y := b;
//       while x != y {
//         if x > y { x := x - y; } else { y := y - x; }
//       }
//       g := x;
//     end
//   }
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dcf/ops.h"

namespace camad::synth {

// --- expressions -----------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : std::uint8_t { kLiteral, kVariable, kUnary, kBinary, kMux };

struct Expr {
  ExprKind kind;
  // kLiteral
  std::int64_t literal = 0;
  // kVariable (a var, in, or out name)
  std::string name;
  // kUnary / kBinary: the data-path operation this node lowers to.
  dcf::OpCode op = dcf::OpCode::kPass;
  ExprPtr lhs;    // operand / left operand / mux condition
  ExprPtr rhs;    // right operand (binary) / mux then-value
  ExprPtr third;  // mux else-value (kMux only)

  static ExprPtr literal_of(std::int64_t value);
  static ExprPtr variable(std::string name);
  static ExprPtr unary(dcf::OpCode op, ExprPtr operand);
  static ExprPtr binary(dcf::OpCode op, ExprPtr lhs, ExprPtr rhs);
  /// mux(cond, a, b): branchless select over the kMux unit.
  static ExprPtr mux(ExprPtr cond, ExprPtr then_value, ExprPtr else_value);
};

// --- statements --------------------------------------------------------------

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Block {
  std::vector<StmtPtr> stmts;
};

enum class StmtKind : std::uint8_t { kAssign, kIf, kWhile, kPar };

struct Stmt {
  StmtKind kind;
  // kAssign
  std::string target;
  ExprPtr value;
  // kIf / kWhile
  ExprPtr cond;
  Block body;      // then-branch / loop body
  Block els;       // else-branch (kIf only; may be empty)
  // kPar: independent blocks executed concurrently
  std::vector<Block> branches;
};

// --- program ------------------------------------------------------------------

struct Program {
  std::string name;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<std::string> variables;
  Block body;
};

/// Pretty-prints a program in parseable BDL (round-trip tested).
std::string to_source(const Program& program);
std::string to_source(const Expr& expr);

}  // namespace camad::synth
