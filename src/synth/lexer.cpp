#include "synth/lexer.h"

#include <array>
#include <cctype>
#include <limits>

#include "util/error.h"

namespace camad::synth {
namespace {

constexpr std::array<std::string_view, 12> kKeywords = {
    "design", "in",  "out",  "var",   "begin", "end",
    "if",     "else", "while", "par", "repeat", "const"};

bool is_keyword(std::string_view word) {
  for (std::string_view kw : kKeywords) {
    if (word == kw) return true;
  }
  return word == "branch";
}

// Multi-character symbols first so "<=" wins over "<".
constexpr std::array<std::string_view, 8> kLongSymbols = {
    ":=", "==", "!=", "<=", ">=", "<<", ">>", "&&"};
constexpr std::string_view kShortSymbols = "{}();,+-*/%<>!&|^=";

}  // namespace

std::vector<Token> tokenize(std::string_view source) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  std::size_t i = 0;

  auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) {
      if (source[i + k] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    i += n;
  };

  while (i < source.size()) {
    const char c = source[i];
    if (c == '#') {  // comment
      while (i < source.size() && source[i] != '\n') advance(1);
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    Token token;
    token.line = line;
    token.column = column;

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t end = i;
      while (end < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[end])) ||
              source[end] == '_')) {
        ++end;
      }
      token.text = std::string(source.substr(i, end - i));
      token.kind =
          is_keyword(token.text) ? TokenKind::kKeyword : TokenKind::kIdentifier;
      advance(end - i);
      tokens.push_back(std::move(token));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t end = i;
      std::int64_t value = 0;
      while (end < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[end]))) {
        const std::int64_t digit = source[end] - '0';
        if (value > (std::numeric_limits<std::int64_t>::max() - digit) / 10) {
          throw ParseError("integer literal overflows 64 bits", line, column);
        }
        value = value * 10 + digit;
        ++end;
      }
      if (end < source.size() &&
          (std::isalpha(static_cast<unsigned char>(source[end])) ||
           source[end] == '_')) {
        throw ParseError("identifier cannot start with a digit", line, column);
      }
      token.kind = TokenKind::kNumber;
      token.text = std::string(source.substr(i, end - i));
      token.number = value;
      advance(end - i);
      tokens.push_back(std::move(token));
      continue;
    }

    bool matched = false;
    for (std::string_view sym : kLongSymbols) {
      if (source.substr(i, sym.size()) == sym) {
        token.kind = TokenKind::kSymbol;
        token.text = std::string(sym);
        advance(sym.size());
        tokens.push_back(std::move(token));
        matched = true;
        break;
      }
    }
    if (matched) continue;
    if (kShortSymbols.find(c) != std::string_view::npos) {
      token.kind = TokenKind::kSymbol;
      token.text = std::string(1, c);
      advance(1);
      tokens.push_back(std::move(token));
      continue;
    }
    throw ParseError(std::string("illegal character '") + c + "'", line,
                     column);
  }

  Token eof;
  eof.kind = TokenKind::kEndOfFile;
  eof.line = line;
  eof.column = column;
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace camad::synth
