#include "graph/algorithms.h"

#include <algorithm>
#include <cassert>

#include "util/error.h"

namespace camad::graph {

std::optional<std::vector<NodeId>> topological_sort(const Digraph& g) {
  const std::size_t n = g.node_count();
  std::vector<std::size_t> indegree(n);
  for (std::size_t i = 0; i < n; ++i) indegree[i] = g.in_degree(NodeId(i));

  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<NodeId> frontier;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) frontier.push_back(NodeId(i));
  }
  while (!frontier.empty()) {
    const NodeId node = frontier.back();
    frontier.pop_back();
    order.push_back(node);
    for (EdgeId e : g.out_edges(node)) {
      const NodeId succ = g.to(e);
      if (--indegree[succ.index()] == 0) frontier.push_back(succ);
    }
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

bool has_cycle(const Digraph& g) { return !topological_sort(g).has_value(); }

DynamicBitset reachable_from(const Digraph& g, NodeId start) {
  DynamicBitset seen(g.node_count());
  std::vector<NodeId> stack{start};
  seen.set(start.index());
  while (!stack.empty()) {
    const NodeId node = stack.back();
    stack.pop_back();
    for (EdgeId e : g.out_edges(node)) {
      const NodeId succ = g.to(e);
      if (!seen.test(succ.index())) {
        seen.set(succ.index());
        stack.push_back(succ);
      }
    }
  }
  return seen;
}

SccResult strongly_connected_components(const Digraph& g) {
  // Iterative Tarjan to avoid stack overflow on long chains.
  const std::size_t n = g.node_count();
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
  SccResult result;
  result.component.assign(n, kUnvisited);

  std::vector<std::size_t> index(n, kUnvisited);
  std::vector<std::size_t> lowlink(n);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::size_t next_index = 0;

  struct Frame {
    std::size_t node;
    std::size_t edge_pos;
  };
  std::vector<Frame> call_stack;

  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    call_stack.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const auto& out = g.out_edges(NodeId(frame.node));
      if (frame.edge_pos < out.size()) {
        const std::size_t succ = g.to(out[frame.edge_pos++]).index();
        if (index[succ] == kUnvisited) {
          index[succ] = lowlink[succ] = next_index++;
          stack.push_back(succ);
          on_stack[succ] = true;
          call_stack.push_back({succ, 0});
        } else if (on_stack[succ]) {
          lowlink[frame.node] = std::min(lowlink[frame.node], index[succ]);
        }
      } else {
        const std::size_t node = frame.node;
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const std::size_t parent = call_stack.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[node]);
        }
        if (lowlink[node] == index[node]) {
          while (true) {
            const std::size_t member = stack.back();
            stack.pop_back();
            on_stack[member] = false;
            result.component[member] = result.count;
            if (member == node) break;
          }
          ++result.count;
        }
      }
    }
  }
  return result;
}

std::vector<DynamicBitset> transitive_closure(const Digraph& g) {
  const std::size_t n = g.node_count();
  const SccResult scc = strongly_connected_components(g);

  // Tarjan numbers components in reverse topological order: when we walk
  // components from id 0 upward, every successor component of component c
  // has an id < c, so its closure row is already final.
  std::vector<std::vector<std::size_t>> members(scc.count);
  for (std::size_t v = 0; v < n; ++v) members[scc.component[v]].push_back(v);

  std::vector<DynamicBitset> comp_row(scc.count, DynamicBitset(n));
  std::vector<DynamicBitset> row(n, DynamicBitset(n));

  for (std::size_t c = 0; c < scc.count; ++c) {
    DynamicBitset& closure = comp_row[c];
    const bool cyclic =
        members[c].size() > 1 ||
        [&] {  // single node with a self-loop is also cyclic
          const NodeId v(members[c][0]);
          for (EdgeId e : g.out_edges(v)) {
            if (g.to(e) == v) return true;
          }
          return false;
        }();
    for (std::size_t v : members[c]) {
      for (EdgeId e : g.out_edges(NodeId(v))) {
        const std::size_t succ = g.to(e).index();
        const std::size_t succ_comp = scc.component[succ];
        if (succ_comp == c) continue;
        closure.set(succ);
        closure |= comp_row[succ_comp];
      }
    }
    if (cyclic) {
      for (std::size_t v : members[c]) closure.set(v);
    }
    for (std::size_t v : members[c]) row[v] = closure;
  }
  return row;
}

LongestPathResult longest_path(const Digraph& g,
                               const std::vector<std::int64_t>& node_weight) {
  if (node_weight.size() != g.node_count()) {
    throw ModelError("longest_path: node_weight size mismatch");
  }
  const auto order = topological_sort(g);
  if (!order) throw ModelError("longest_path: graph is cyclic");

  LongestPathResult result;
  result.distance.assign(g.node_count(), 0);
  result.parent.assign(g.node_count(), EdgeId::invalid());
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    result.distance[i] = node_weight[i];
  }
  for (NodeId node : *order) {
    for (EdgeId e : g.out_edges(node)) {
      const NodeId succ = g.to(e);
      const std::int64_t candidate = result.distance[node.index()] +
                                     g.weight(e) + node_weight[succ.index()];
      if (candidate > result.distance[succ.index()]) {
        result.distance[succ.index()] = candidate;
        result.parent[succ.index()] = e;
      }
    }
  }
  result.best_node = NodeId(0);
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    if (result.distance[i] > result.best) {
      result.best = result.distance[i];
      result.best_node = NodeId(i);
    }
  }
  return result;
}

std::vector<NodeId> critical_path_nodes(const Digraph& g,
                                        const LongestPathResult& result) {
  std::vector<NodeId> path;
  if (g.node_count() == 0) return path;
  NodeId node = result.best_node;
  path.push_back(node);
  while (result.parent[node.index()].valid()) {
    node = g.from(result.parent[node.index()]);
    path.push_back(node);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace camad::graph
