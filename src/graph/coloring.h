// Undirected conflict graphs and colouring / clique partitioning.
//
// Resource sharing in synthesis reduces to clique partitioning of a
// *compatibility* graph (vertices that may share one unit) or, dually,
// colouring of its complement *conflict* graph. Both are NP-hard; we ship
// the classic greedy heuristics used by 1980s HLS systems.
#pragma once

#include <cstddef>
#include <vector>

#include "util/bitset.h"

namespace camad::graph {

/// Dense undirected graph stored as adjacency bitsets.
class UndirectedGraph {
 public:
  explicit UndirectedGraph(std::size_t node_count)
      : adj_(node_count, DynamicBitset(node_count)) {}

  [[nodiscard]] std::size_t node_count() const { return adj_.size(); }

  void add_edge(std::size_t a, std::size_t b);
  [[nodiscard]] bool has_edge(std::size_t a, std::size_t b) const {
    return adj_[a].test(b);
  }
  [[nodiscard]] const DynamicBitset& neighbors(std::size_t v) const {
    return adj_[v];
  }
  [[nodiscard]] std::size_t degree(std::size_t v) const {
    return adj_[v].count();
  }

  /// Complement graph (no self-loops).
  [[nodiscard]] UndirectedGraph complement() const;

 private:
  std::vector<DynamicBitset> adj_;
};

struct ColoringResult {
  std::vector<std::size_t> color;  ///< node -> colour id
  std::size_t color_count = 0;
};

/// DSATUR colouring of a conflict graph: adjacent nodes get distinct
/// colours; colour count approximates the chromatic number.
ColoringResult color_dsatur(const UndirectedGraph& conflict);

/// Greedy clique partitioning of a *compatibility* graph (Tseng/Siewiorek
/// style): repeatedly grows a clique around the densest remaining node.
/// Each returned group is a clique; groups cover all nodes.
std::vector<std::vector<std::size_t>> clique_partition(
    const UndirectedGraph& compat);

}  // namespace camad::graph
