// Directed-graph substrate.
//
// Model layers (data path, Petri net) keep their own strongly typed ID
// spaces and project into this plain digraph for analysis: topological
// sorting, SCCs, transitive closure, longest paths. Nodes are dense
// indices; edges carry their endpoints and an optional integer weight.
#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.h"

namespace camad::graph {

struct NodeTag;
struct EdgeTag;
using NodeId = StrongId<NodeTag>;
using EdgeId = StrongId<EdgeTag>;

class Digraph {
 public:
  Digraph() = default;
  /// Creates a graph with `node_count` isolated nodes.
  explicit Digraph(std::size_t node_count);

  NodeId add_node();
  /// Adds a directed edge from -> to. Parallel edges and self-loops allowed.
  EdgeId add_edge(NodeId from, NodeId to, std::int64_t weight = 0);

  [[nodiscard]] std::size_t node_count() const { return out_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  [[nodiscard]] NodeId from(EdgeId e) const { return edges_[e.index()].from; }
  [[nodiscard]] NodeId to(EdgeId e) const { return edges_[e.index()].to; }
  [[nodiscard]] std::int64_t weight(EdgeId e) const {
    return edges_[e.index()].weight;
  }

  [[nodiscard]] const std::vector<EdgeId>& out_edges(NodeId n) const {
    return out_[n.index()];
  }
  [[nodiscard]] const std::vector<EdgeId>& in_edges(NodeId n) const {
    return in_[n.index()];
  }
  [[nodiscard]] std::size_t out_degree(NodeId n) const {
    return out_[n.index()].size();
  }
  [[nodiscard]] std::size_t in_degree(NodeId n) const {
    return in_[n.index()].size();
  }

 private:
  struct Edge {
    NodeId from;
    NodeId to;
    std::int64_t weight;
  };

  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

}  // namespace camad::graph
