#include "graph/digraph.h"

#include "util/error.h"

namespace camad::graph {

Digraph::Digraph(std::size_t node_count) : out_(node_count), in_(node_count) {}

NodeId Digraph::add_node() {
  out_.emplace_back();
  in_.emplace_back();
  return NodeId(static_cast<NodeId::underlying_type>(out_.size() - 1));
}

EdgeId Digraph::add_edge(NodeId from, NodeId to, std::int64_t weight) {
  if (from.index() >= out_.size() || to.index() >= out_.size()) {
    throw ModelError("Digraph::add_edge: endpoint out of range");
  }
  const EdgeId id(static_cast<EdgeId::underlying_type>(edges_.size()));
  edges_.push_back(Edge{from, to, weight});
  out_[from.index()].push_back(id);
  in_[to.index()].push_back(id);
  return id;
}

}  // namespace camad::graph
