// Graph algorithms over Digraph: orderings, components, closures, paths.
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.h"
#include "util/bitset.h"

namespace camad::graph {

/// Topological order of all nodes (Kahn), or nullopt if the graph is cyclic.
std::optional<std::vector<NodeId>> topological_sort(const Digraph& g);

/// True iff the graph contains a directed cycle (self-loops count).
bool has_cycle(const Digraph& g);

/// Set of nodes reachable from `start` following out-edges; includes start.
DynamicBitset reachable_from(const Digraph& g, NodeId start);

/// Strongly connected components, Tarjan's algorithm.
/// Returns component index per node; components are numbered in reverse
/// topological order of the condensation (i.e. component of an edge source
/// is >= component of its target... see tests for the exact guarantee).
struct SccResult {
  std::vector<std::size_t> component;  ///< node index -> component id
  std::size_t count = 0;               ///< number of components
};
SccResult strongly_connected_components(const Digraph& g);

/// Full transitive closure as one bitset row per node: row[i].test(j) iff
/// a non-empty directed path i -> j exists (irreflexive unless cyclic).
/// O(V*E/64) via reverse-topological propagation over the condensation.
std::vector<DynamicBitset> transitive_closure(const Digraph& g);

/// Longest (critical) path weights on a DAG.
struct LongestPathResult {
  std::vector<std::int64_t> distance;  ///< best source->node total, per node
  std::vector<EdgeId> parent;          ///< incoming edge on a best path
  std::int64_t best = 0;               ///< max over all nodes
  NodeId best_node;                    ///< argmax
};
/// Node weights are supplied per node; edge weights from the graph are
/// added along paths. Throws ModelError if the graph is cyclic.
LongestPathResult longest_path(const Digraph& g,
                               const std::vector<std::int64_t>& node_weight);

/// Extracts the node sequence of the critical path from a result.
std::vector<NodeId> critical_path_nodes(const Digraph& g,
                                        const LongestPathResult& result);

}  // namespace camad::graph
