#include "graph/coloring.h"

#include <algorithm>

#include "util/error.h"

namespace camad::graph {

void UndirectedGraph::add_edge(std::size_t a, std::size_t b) {
  if (a >= adj_.size() || b >= adj_.size()) {
    throw ModelError("UndirectedGraph::add_edge: node out of range");
  }
  if (a == b) return;  // conflict/compat graphs are simple
  adj_[a].set(b);
  adj_[b].set(a);
}

UndirectedGraph UndirectedGraph::complement() const {
  const std::size_t n = adj_.size();
  UndirectedGraph out(n);
  for (std::size_t v = 0; v < n; ++v) {
    // flip: set all, clear originals and the diagonal
    DynamicBitset all(n);
    all.set_all();
    all.and_not(adj_[v]);
    all.reset(v);
    out.adj_[v] = std::move(all);
  }
  return out;
}

ColoringResult color_dsatur(const UndirectedGraph& conflict) {
  const std::size_t n = conflict.node_count();
  constexpr std::size_t kUncolored = static_cast<std::size_t>(-1);
  ColoringResult result;
  result.color.assign(n, kUncolored);
  if (n == 0) return result;

  // saturation[v] = set of colours used by coloured neighbours of v.
  std::vector<DynamicBitset> saturation(n, DynamicBitset(n));

  for (std::size_t step = 0; step < n; ++step) {
    // Pick the uncoloured node with max saturation, ties by degree.
    std::size_t best = kUncolored;
    std::size_t best_sat = 0, best_deg = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (result.color[v] != kUncolored) continue;
      const std::size_t sat = saturation[v].count();
      const std::size_t deg = conflict.degree(v);
      if (best == kUncolored || sat > best_sat ||
          (sat == best_sat && deg > best_deg)) {
        best = v;
        best_sat = sat;
        best_deg = deg;
      }
    }
    // Lowest colour not used by a neighbour.
    std::size_t colour = 0;
    while (colour < n && saturation[best].test(colour)) ++colour;
    result.color[best] = colour;
    result.color_count = std::max(result.color_count, colour + 1);
    conflict.neighbors(best).for_each(
        [&](std::size_t u) { saturation[u].set(colour); });
  }
  return result;
}

std::vector<std::vector<std::size_t>> clique_partition(
    const UndirectedGraph& compat) {
  const std::size_t n = compat.node_count();
  std::vector<std::vector<std::size_t>> groups;
  DynamicBitset remaining(n);
  remaining.set_all();

  while (remaining.any()) {
    // Seed: remaining node with the most remaining-compatible neighbours.
    std::size_t seed = n;
    std::size_t seed_deg = 0;
    remaining.for_each([&](std::size_t v) {
      DynamicBitset nb = compat.neighbors(v);
      nb &= remaining;
      const std::size_t deg = nb.count();
      if (seed == n || deg > seed_deg) {
        seed = v;
        seed_deg = deg;
      }
    });

    std::vector<std::size_t> clique{seed};
    DynamicBitset candidates = compat.neighbors(seed);
    candidates &= remaining;
    candidates.reset(seed);

    while (candidates.any()) {
      // Next member: candidate keeping the largest candidate set.
      std::size_t pick = n;
      std::size_t pick_score = 0;
      candidates.for_each([&](std::size_t v) {
        DynamicBitset kept = candidates;
        kept &= compat.neighbors(v);
        const std::size_t score = kept.count();
        if (pick == n || score > pick_score) {
          pick = v;
          pick_score = score;
        }
      });
      clique.push_back(pick);
      candidates &= compat.neighbors(pick);
      candidates.reset(pick);
    }

    for (std::size_t v : clique) remaining.reset(v);
    std::sort(clique.begin(), clique.end());
    groups.push_back(std::move(clique));
  }
  return groups;
}

}  // namespace camad::graph
