#include "gen/shrink.h"

#include <utility>
#include <vector>

namespace camad::gen {
namespace {

using synth::Block;
using synth::Expr;
using synth::ExprPtr;
using synth::Program;
using synth::Stmt;
using synth::StmtKind;
using synth::StmtPtr;

// --- deep copy --------------------------------------------------------------

ExprPtr clone_expr(const ExprPtr& e) {
  if (!e) return nullptr;
  auto out = std::make_unique<Expr>();
  out->kind = e->kind;
  out->literal = e->literal;
  out->name = e->name;
  out->op = e->op;
  out->lhs = clone_expr(e->lhs);
  out->rhs = clone_expr(e->rhs);
  out->third = clone_expr(e->third);
  return out;
}

Block clone_block(const Block& b);

StmtPtr clone_stmt(const StmtPtr& s) {
  auto out = std::make_unique<Stmt>();
  out->kind = s->kind;
  out->target = s->target;
  out->value = clone_expr(s->value);
  out->cond = clone_expr(s->cond);
  out->body = clone_block(s->body);
  out->els = clone_block(s->els);
  for (const Block& br : s->branches) out->branches.push_back(clone_block(br));
  return out;
}

Block clone_block(const Block& b) {
  Block out;
  for (const StmtPtr& s : b.stmts) out.stmts.push_back(clone_stmt(s));
  return out;
}

// --- program edits ----------------------------------------------------------
//
// Statements and expressions are addressed by deterministic pre-order
// index over a *fresh clone*, so each candidate is an independent
// one-edit copy of the current program.

void collect_blocks(Block& b, std::vector<Block*>& out) {
  out.push_back(&b);
  for (StmtPtr& s : b.stmts) {
    collect_blocks(s->body, out);
    collect_blocks(s->els, out);
    for (Block& br : s->branches) collect_blocks(br, out);
  }
}

void collect_exprs(ExprPtr& e, std::vector<ExprPtr*>& out) {
  if (!e) return;
  out.push_back(&e);
  collect_exprs(e->lhs, out);
  collect_exprs(e->rhs, out);
  collect_exprs(e->third, out);
}

void collect_exprs(Block& b, std::vector<ExprPtr*>& out) {
  for (StmtPtr& s : b.stmts) {
    collect_exprs(s->value, out);
    collect_exprs(s->cond, out);
    collect_exprs(s->body, out);
    collect_exprs(s->els, out);
    for (Block& br : s->branches) collect_exprs(br, out);
  }
}

std::size_t count_stmts(const Program& p) {
  std::size_t n = 0;
  std::vector<Block*> blocks;
  collect_blocks(const_cast<Program&>(p).body, blocks);
  for (const Block* b : blocks) n += b->stmts.size();
  return n;
}

/// Locates the k-th statement (pre-order over blocks) in `p`.
std::pair<Block*, std::size_t> locate_stmt(Program& p, std::size_t k) {
  std::vector<Block*> blocks;
  collect_blocks(p.body, blocks);
  for (Block* b : blocks) {
    if (k < b->stmts.size()) return {b, k};
    k -= b->stmts.size();
  }
  return {nullptr, 0};
}

bool remove_stmt(Program& p, std::size_t k) {
  auto [block, i] = locate_stmt(p, k);
  if (block == nullptr) return false;
  block->stmts.erase(block->stmts.begin() + static_cast<std::ptrdiff_t>(i));
  return true;
}

/// Replaces a composite statement by the statements of its blocks.
bool hoist_stmt(Program& p, std::size_t k) {
  auto [block, i] = locate_stmt(p, k);
  if (block == nullptr) return false;
  Stmt& s = *block->stmts[i];
  if (s.kind == StmtKind::kAssign) return false;
  std::vector<StmtPtr> inlined;
  for (StmtPtr& inner : s.body.stmts) inlined.push_back(std::move(inner));
  for (StmtPtr& inner : s.els.stmts) inlined.push_back(std::move(inner));
  for (Block& br : s.branches) {
    for (StmtPtr& inner : br.stmts) inlined.push_back(std::move(inner));
  }
  block->stmts.erase(block->stmts.begin() + static_cast<std::ptrdiff_t>(i));
  block->stmts.insert(block->stmts.begin() + static_cast<std::ptrdiff_t>(i),
                      std::make_move_iterator(inlined.begin()),
                      std::make_move_iterator(inlined.end()));
  return true;
}

std::size_t count_exprs(const Program& p) {
  std::vector<ExprPtr*> exprs;
  collect_exprs(const_cast<Program&>(p).body, exprs);
  return exprs.size();
}

/// Edit 0..2: replace the k-th expression by its lhs/rhs/third child;
/// edit 3: replace it by the literal 0.
bool simplify_expr(Program& p, std::size_t k, int edit) {
  std::vector<ExprPtr*> exprs;
  collect_exprs(p.body, exprs);
  if (k >= exprs.size()) return false;
  ExprPtr& slot = *exprs[k];
  if (edit < 3) {
    ExprPtr* child = edit == 0 ? &slot->lhs : edit == 1 ? &slot->rhs
                                                        : &slot->third;
    if (!*child) return false;
    slot = std::move(*child);
    return true;
  }
  if (slot->kind == synth::ExprKind::kLiteral && slot->literal == 0) {
    return false;  // already minimal
  }
  slot = Expr::literal_of(0);
  return true;
}

// --- plan edits -------------------------------------------------------------

void collect_nodes(SysPlan& p, std::vector<SysPlan*>& out) {
  out.push_back(&p);
  for (SysPlan& c : p.children) collect_nodes(c, out);
}

/// Applies plan edit `edit` to node index `k`; returns false when the
/// edit does not apply there. Edits, roughly most-reductive first:
///   0..7   replace the node by its (edit)-th child
///   8..15  erase the (edit-8)-th child (where arity rules allow)
///   16     loop count -> 1
///   17     drop a branch's else arm
///   18     guard style -> kNotUnit, compare selectors -> 0
///   19     step selectors -> 0
bool edit_plan(SysPlan& root, std::size_t k, int edit) {
  std::vector<SysPlan*> nodes;
  collect_nodes(root, nodes);
  if (k >= nodes.size()) return false;
  SysPlan& n = *nodes[k];
  if (edit < 8) {
    const std::size_t j = static_cast<std::size_t>(edit);
    if (j >= n.children.size()) return false;
    SysPlan replacement = std::move(n.children[j]);
    n = std::move(replacement);
    return true;
  }
  if (edit < 16) {
    const std::size_t j = static_cast<std::size_t>(edit - 8);
    if (j >= n.children.size()) return false;
    const std::size_t min_children = n.kind == PlanKind::kPar    ? 3
                                     : n.kind == PlanKind::kSeq  ? 2
                                                                 : 99;
    if (n.children.size() < min_children) return false;
    n.children.erase(n.children.begin() + static_cast<std::ptrdiff_t>(j));
    return true;
  }
  switch (edit) {
    case 16:
      if (n.kind != PlanKind::kLoop || n.iters <= 1) return false;
      n.iters = 1;
      return true;
    case 17:
      if (n.kind != PlanKind::kBranch || n.children.size() != 2) return false;
      n.children.pop_back();
      return true;
    case 18:
      if (n.kind != PlanKind::kBranch ||
          (n.guard == GuardStyle::kNotUnit && n.cmp_op == 0 && n.cmp_a == 0 &&
           n.cmp_b == 0)) {
        return false;
      }
      n.guard = GuardStyle::kNotUnit;
      n.cmp_op = n.cmp_a = n.cmp_b = 0;
      return true;
    case 19:
      if (n.kind != PlanKind::kStep ||
          (n.op == 0 && n.src_a == 0 && n.src_b == 0 && n.src_c == 0)) {
        return false;
      }
      n.op = n.src_a = n.src_b = n.src_c = 0;
      return true;
    default: return false;
  }
}

}  // namespace

synth::Program clone_program(const synth::Program& program) {
  Program out;
  out.name = program.name;
  out.inputs = program.inputs;
  out.outputs = program.outputs;
  out.variables = program.variables;
  out.body = clone_block(program.body);
  return out;
}

synth::Program shrink_program(const synth::Program& failing,
                              const ProgramPredicate& still_fails,
                              std::size_t max_attempts, ShrinkStats* stats) {
  Program current = clone_program(failing);
  ShrinkStats local;
  ShrinkStats& st = stats != nullptr ? *stats : local;

  bool improved = true;
  while (improved && st.attempts < max_attempts) {
    improved = false;
    // Structural reductions first: statement removal, then hoisting.
    const std::size_t stmts = count_stmts(current);
    for (std::size_t k = 0; k < stmts && !improved; ++k) {
      for (const auto edit : {&remove_stmt, &hoist_stmt}) {
        Program candidate = clone_program(current);
        if (!edit(candidate, k)) continue;
        ++st.attempts;
        if (still_fails(candidate)) {
          current = std::move(candidate);
          ++st.rounds;
          improved = true;
          break;
        }
        if (st.attempts >= max_attempts) break;
      }
    }
    if (improved) continue;
    // Expression simplification.
    const std::size_t exprs = count_exprs(current);
    for (std::size_t k = 0; k < exprs && !improved; ++k) {
      for (int edit = 0; edit < 4; ++edit) {
        Program candidate = clone_program(current);
        if (!simplify_expr(candidate, k, edit)) continue;
        ++st.attempts;
        if (still_fails(candidate)) {
          current = std::move(candidate);
          ++st.rounds;
          improved = true;
          break;
        }
        if (st.attempts >= max_attempts) break;
      }
    }
  }
  return current;
}

SysPlan shrink_plan(const SysPlan& failing, const PlanPredicate& still_fails,
                    std::size_t max_attempts, ShrinkStats* stats) {
  SysPlan current = failing;
  ShrinkStats local;
  ShrinkStats& st = stats != nullptr ? *stats : local;

  bool improved = true;
  while (improved && st.attempts < max_attempts) {
    improved = false;
    std::vector<SysPlan*> nodes;
    collect_nodes(current, nodes);
    const std::size_t n = nodes.size();
    for (std::size_t k = 0; k < n && !improved; ++k) {
      for (int edit = 0; edit < 20; ++edit) {
        SysPlan candidate = current;
        if (!edit_plan(candidate, k, edit)) continue;
        ++st.attempts;
        if (still_fails(candidate)) {
          current = std::move(candidate);
          ++st.rounds;
          improved = true;
          break;
        }
        if (st.attempts >= max_attempts) break;
      }
    }
  }
  return current;
}

}  // namespace camad::gen
