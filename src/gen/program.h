// Randomized *properly designed* BDL program generator.
//
// Emits structured programs whose compilation (synth::compile) is
// properly designed per Def 3.2 *by construction*, so generative tests
// can quantify over the paper's universally quantified theorems instead
// of the hand-written corpus. The construction invariants:
//
//   * safe net        — programs are structured (sequence / if / counted
//                       while / par), so the compiled control net is a
//                       workflow net: one token per concurrent branch;
//   * rule 1          — the arms of every branching construct (if/else
//                       and par, which are structurally parallel under
//                       the Def 2.3 relation ∥) receive *disjoint*
//                       partitions of the writable variable set, so no
//                       two parallel states share an associated vertex;
//   * race freedom    — arms may additionally read only variables frozen
//                       for the whole construct (written by no arm) and
//                       *input channels are partitioned like variables*:
//                       two parallel arms never read the same input
//                       vertex, so environment-stream consumption order
//                       is schedule-independent (the property the Def 4.5
//                       transformations preserve);
//   * rule 3          — branch guards are compiled predicates with the
//                       kNot complement the checker proves exclusive;
//   * rule 4          — expressions are trees over fresh units: no
//                       combinatorial loops;
//   * rule 5          — every generated state latches a register, a flag
//                       or an output;
//   * termination     — every `while` is a counted loop over a reserved
//                       counter variable initialized to a small literal
//                       and decremented exactly once per iteration.
//
// Generation is deterministic in (seed, options): the same pair always
// yields the same program, on every platform (util/rng.h).
#pragma once

#include <cstdint>

#include "synth/ast.h"
#include "util/rng.h"

namespace camad::gen {

struct ProgramGenOptions {
  std::size_t num_inputs = 2;       ///< >= 1 environment sources
  std::size_t num_outputs = 1;      ///< >= 1 environment sinks
  std::size_t num_vars = 4;         ///< >= 1 general-purpose registers
  std::size_t max_depth = 3;        ///< nesting budget for if/while/par
  std::size_t max_block_stmts = 3;  ///< statements per block (>= 1)
  std::size_t max_expr_depth = 2;   ///< operator nesting in expressions
  std::int64_t literal_lo = 0;
  std::int64_t literal_hi = 9;
  std::uint32_t max_loop_iters = 3;  ///< counted-loop trip bound (>= 1)
  double p_if = 0.25;                ///< per-slot branch probability
  double p_while = 0.2;
  double p_par = 0.2;
  bool allow_par = true;
  bool allow_while = true;
  bool allow_if = true;
  bool allow_mux = true;
  /// Division/modulo/shifts can evaluate to ⊥ (divide by zero, shift out
  /// of range); they are legal and deterministic but are kept out of
  /// branch conditions (a ⊥ guard deadlocks the net).
  bool allow_partial_ops = true;
};

/// Draws one program from `rng`. See the header comment for the
/// invariants the result satisfies.
synth::Program random_program(Rng& rng, const ProgramGenOptions& options = {});

/// Seeded convenience; the program is named "gen_<seed>".
synth::Program random_program(std::uint64_t seed,
                              const ProgramGenOptions& options = {});

}  // namespace camad::gen
