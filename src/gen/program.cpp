#include "gen/program.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "dcf/ops.h"

namespace camad::gen {
namespace {

using dcf::OpCode;
using synth::Block;
using synth::Expr;
using synth::ExprPtr;
using synth::Program;
using synth::Stmt;
using synth::StmtPtr;

/// Operators that always produce a defined value from defined operands —
/// safe inside branch conditions (a ⊥ guard deadlocks the net).
constexpr OpCode kTotalBinary[] = {
    OpCode::kAdd, OpCode::kSub, OpCode::kMul, OpCode::kAnd,
    OpCode::kOr,  OpCode::kXor, OpCode::kEq,  OpCode::kNe,
    OpCode::kLt,  OpCode::kLe,  OpCode::kGt,  OpCode::kGe,
};
/// Partial operators: ⊥ on divide-by-zero / out-of-range shift.
constexpr OpCode kPartialBinary[] = {
    OpCode::kDiv, OpCode::kMod, OpCode::kShl, OpCode::kShr,
};

/// What a generation context may touch. Arms of one branching construct
/// get disjoint `writable` and `inputs` sets (rule 1 + stream-race
/// freedom); `frozen` is readable state no concurrent arm writes.
struct Scope {
  std::vector<std::string> writable;
  std::vector<std::string> frozen;
  std::vector<std::string> inputs;

  [[nodiscard]] std::vector<std::string> readable_vars() const {
    std::vector<std::string> out = writable;
    out.insert(out.end(), frozen.begin(), frozen.end());
    return out;
  }
};

class ProgramGen {
 public:
  ProgramGen(Rng& rng, const ProgramGenOptions& opt) : rng_(rng), opt_(opt) {}

  Program run() {
    Program p;
    p.name = "gen";
    for (std::size_t i = 0; i < std::max<std::size_t>(1, opt_.num_inputs); ++i)
      p.inputs.push_back("a" + std::to_string(i));
    for (std::size_t i = 0; i < std::max<std::size_t>(1, opt_.num_outputs); ++i)
      p.outputs.push_back("o" + std::to_string(i));
    for (std::size_t i = 0; i < std::max<std::size_t>(1, opt_.num_vars); ++i)
      p.variables.push_back("v" + std::to_string(i));

    Scope top{p.variables, {}, p.inputs};

    // Prologue: initialize every register from inputs/literals only (an
    // uninitialized sibling read would seed ⊥, which a later branch
    // condition would turn into a — legal but useless — deadlock).
    const Scope init_scope{{}, {}, p.inputs};
    for (const std::string& v : p.variables) {
      p.body.stmts.push_back(assign(v, leaf(init_scope, /*condition=*/false)));
    }
    gen_block(p.body, top, opt_.max_depth);
    // Epilogue: every output observes something (external events exist).
    for (const std::string& o : p.outputs) {
      p.body.stmts.push_back(assign(o, gen_expr(top, 1, false)));
    }
    return p;
  }

 private:
  // --- small helpers --------------------------------------------------------
  StmtPtr assign(std::string target, ExprPtr value) {
    auto s = std::make_unique<Stmt>();
    s->kind = synth::StmtKind::kAssign;
    s->target = std::move(target);
    s->value = std::move(value);
    return s;
  }

  const std::string& pick(const std::vector<std::string>& v) {
    return v[rng_.below(v.size())];
  }

  /// Deterministic Fisher-Yates shuffle.
  void shuffle(std::vector<std::string>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[rng_.below(i)]);
    }
  }

  /// Splits `pool` into `parts` disjoint subsets. Every element lands in
  /// exactly one part or in the returned leftover ("frozen") set. The
  /// first `min_filled` parts are guaranteed non-empty when the pool is
  /// large enough.
  std::vector<std::vector<std::string>> partition(
      std::vector<std::string> pool, std::size_t parts,
      std::size_t min_filled, std::vector<std::string>* leftover) {
    shuffle(pool);
    std::vector<std::vector<std::string>> out(parts);
    std::size_t next = 0;
    for (std::size_t i = 0; i < min_filled && next < pool.size(); ++i) {
      out[i].push_back(pool[next++]);
    }
    for (; next < pool.size(); ++next) {
      // parts + 1 buckets: the extra one is the frozen leftover.
      const std::size_t bucket = rng_.below(parts + 1);
      if (bucket == parts) {
        if (leftover != nullptr) leftover->push_back(pool[next]);
      } else {
        out[bucket].push_back(pool[next]);
      }
    }
    return out;
  }

  // --- expressions ----------------------------------------------------------
  ExprPtr leaf(const Scope& scope, bool condition) {
    const std::vector<std::string> vars = scope.readable_vars();
    // Bias toward variables/inputs so dataflow actually flows.
    const bool want_var = !vars.empty() && rng_.chance(0.45);
    if (want_var) return Expr::variable(pick(vars));
    const bool want_input = !scope.inputs.empty() && rng_.chance(0.5);
    if (want_input) return Expr::variable(pick(scope.inputs));
    if (!vars.empty() && rng_.chance(0.5)) return Expr::variable(pick(vars));
    (void)condition;
    return Expr::literal_of(rng_.range(opt_.literal_lo, opt_.literal_hi));
  }

  ExprPtr gen_expr(const Scope& scope, std::size_t depth, bool condition) {
    if (depth == 0 || rng_.chance(0.35)) return leaf(scope, condition);
    const double roll = rng_.uniform();
    if (roll < 0.12) {
      const OpCode op = rng_.chance(0.5) ? OpCode::kNeg : OpCode::kNot;
      return Expr::unary(op, gen_expr(scope, depth - 1, condition));
    }
    if (!condition && opt_.allow_mux && roll < 0.2) {
      return Expr::mux(gen_expr(scope, depth - 1, condition),
                       gen_expr(scope, depth - 1, condition),
                       gen_expr(scope, depth - 1, condition));
    }
    OpCode op;
    if (!condition && opt_.allow_partial_ops && rng_.chance(0.12)) {
      op = kPartialBinary[rng_.below(std::size(kPartialBinary))];
    } else {
      op = kTotalBinary[rng_.below(std::size(kTotalBinary))];
    }
    return Expr::binary(op, gen_expr(scope, depth - 1, condition),
                        gen_expr(scope, depth - 1, condition));
  }

  // --- statements -----------------------------------------------------------
  void gen_block(Block& block, const Scope& scope, std::size_t depth) {
    const std::size_t n =
        1 + rng_.below(std::max<std::size_t>(1, opt_.max_block_stmts));
    for (std::size_t i = 0; i < n; ++i) gen_stmt(block, scope, depth);
  }

  void gen_stmt(Block& block, const Scope& scope, std::size_t depth) {
    const bool composite_ok = depth > 0 && scope.writable.size() >= 2;
    if (composite_ok && opt_.allow_par && rng_.chance(opt_.p_par)) {
      gen_par(block, scope, depth);
      return;
    }
    if (composite_ok && opt_.allow_while && rng_.chance(opt_.p_while)) {
      gen_while(block, scope, depth);
      return;
    }
    if (depth > 0 && !scope.writable.empty() && opt_.allow_if &&
        rng_.chance(opt_.p_if)) {
      gen_if(block, scope, depth);
      return;
    }
    if (scope.writable.empty()) return;  // nothing assignable here
    block.stmts.push_back(assign(pick(scope.writable),
                                 gen_expr(scope, opt_.max_expr_depth, false)));
  }

  void gen_if(Block& block, const Scope& scope, std::size_t depth) {
    auto s = std::make_unique<Stmt>();
    s->kind = synth::StmtKind::kIf;
    s->cond = gen_expr(scope, std::min<std::size_t>(opt_.max_expr_depth, 2),
                       /*condition=*/true);

    // if/else arms are structurally parallel (Def 2.3 ∥): disjoint write
    // sets and disjoint input channels, shared reads only via `frozen`.
    std::vector<std::string> frozen = scope.frozen;
    const auto var_parts = partition(scope.writable, 2, 1, &frozen);
    std::vector<std::string> unused_inputs;
    const auto input_parts = partition(scope.inputs, 2, 0, &unused_inputs);

    const Scope then_scope{var_parts[0], frozen, input_parts[0]};
    gen_block(s->body, then_scope, depth - 1);
    if (!var_parts[1].empty() && rng_.chance(0.6)) {
      const Scope else_scope{var_parts[1], frozen, input_parts[1]};
      gen_block(s->els, else_scope, depth - 1);
    }
    block.stmts.push_back(std::move(s));
  }

  void gen_while(Block& block, const Scope& scope, std::size_t depth) {
    // Counted loop over a reserved counter: terminates by construction.
    Scope body_scope = scope;
    const std::size_t c = rng_.below(body_scope.writable.size());
    const std::string counter = body_scope.writable[c];
    body_scope.writable.erase(body_scope.writable.begin() +
                              static_cast<std::ptrdiff_t>(c));
    const std::int64_t iters =
        1 + static_cast<std::int64_t>(
                rng_.below(std::max<std::uint32_t>(1, opt_.max_loop_iters)));
    block.stmts.push_back(assign(counter, Expr::literal_of(iters)));

    auto s = std::make_unique<Stmt>();
    s->kind = synth::StmtKind::kWhile;
    s->cond = Expr::binary(OpCode::kNe, Expr::variable(counter),
                           Expr::literal_of(0));
    gen_block(s->body, body_scope, depth - 1);
    s->body.stmts.push_back(assign(
        counter, Expr::binary(OpCode::kSub, Expr::variable(counter),
                              Expr::literal_of(1))));
    block.stmts.push_back(std::move(s));
  }

  void gen_par(Block& block, const Scope& scope, std::size_t depth) {
    const std::size_t max_arms = std::min<std::size_t>(
        {static_cast<std::size_t>(3), scope.writable.size()});
    const std::size_t arms = 2 + rng_.below(max_arms - 1);

    std::vector<std::string> frozen = scope.frozen;
    const auto var_parts = partition(scope.writable, arms, arms, &frozen);
    std::vector<std::string> unused_inputs;
    const auto input_parts = partition(scope.inputs, arms, 0, &unused_inputs);

    auto s = std::make_unique<Stmt>();
    s->kind = synth::StmtKind::kPar;
    for (std::size_t i = 0; i < arms; ++i) {
      Block branch;
      const Scope arm_scope{var_parts[i], frozen, input_parts[i]};
      if (arm_scope.writable.empty()) {
        // Pool too small for this arm: give it a frozen read so the
        // branch is non-empty... not assignable; skip the arm instead.
        continue;
      }
      gen_block(branch, arm_scope, depth - 1);
      s->branches.push_back(std::move(branch));
    }
    if (s->branches.size() < 2) {
      // Degenerate partition — fall back to a plain assignment.
      block.stmts.push_back(assign(
          pick(scope.writable), gen_expr(scope, opt_.max_expr_depth, false)));
      return;
    }
    block.stmts.push_back(std::move(s));
  }

  Rng& rng_;
  const ProgramGenOptions& opt_;
};

}  // namespace

synth::Program random_program(Rng& rng, const ProgramGenOptions& options) {
  return ProgramGen(rng, options).run();
}

synth::Program random_program(std::uint64_t seed,
                              const ProgramGenOptions& options) {
  Rng rng(seed);
  synth::Program p = random_program(rng, options);
  p.name = "gen_" + std::to_string(seed);
  return p;
}

}  // namespace camad::gen
