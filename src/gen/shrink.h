// Greedy counterexample minimization.
//
// Both generators draw from an explicit intermediate representation — a
// BDL AST (gen/program.h) or a SysPlan recipe tree (gen/sysgen.h) — so a
// failing input shrinks at that level and is *rebuilt*, which keeps every
// construction invariant intact: a shrunk candidate is still a properly
// designed system by construction, and the only question the caller's
// predicate must answer is "does it still fail the same way?".
//
// The strategy is classical greedy first-improvement: enumerate all
// one-step-smaller candidates (drop a statement / child, hoist a nested
// block into its parent, reduce a loop count, simplify an expression or
// selector), accept the first candidate the predicate still rejects, and
// repeat until no candidate fails. Deterministic: candidate order depends
// only on the input's structure.
#pragma once

#include <cstddef>
#include <functional>

#include "gen/sysgen.h"
#include "synth/ast.h"

namespace camad::gen {

/// Returns true when the candidate still exhibits the failure being
/// minimized. Must be deterministic (same input, same answer).
using ProgramPredicate = std::function<bool(const synth::Program&)>;
using PlanPredicate = std::function<bool(const SysPlan&)>;

struct ShrinkStats {
  std::size_t rounds = 0;      ///< accepted reduction steps
  std::size_t attempts = 0;    ///< predicate evaluations
};

/// Deep copy (the AST owns its nodes through unique_ptr).
synth::Program clone_program(const synth::Program& program);

/// Minimizes `failing` under `still_fails`. `still_fails(failing)` is
/// assumed true; the result also satisfies it. `max_attempts` bounds the
/// total number of predicate evaluations (the predicate typically runs a
/// compile + simulate cycle, so this bounds shrinking cost).
synth::Program shrink_program(const synth::Program& failing,
                              const ProgramPredicate& still_fails,
                              std::size_t max_attempts = 2000,
                              ShrinkStats* stats = nullptr);

SysPlan shrink_plan(const SysPlan& failing, const PlanPredicate& still_fails,
                    std::size_t max_attempts = 2000,
                    ShrinkStats* stats = nullptr);

}  // namespace camad::gen
