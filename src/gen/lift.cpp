#include "gen/lift.h"

#include <algorithm>
#include <vector>

#include "dcf/builder.h"

namespace camad::gen {
namespace {

/// PNML names may contain whitespace; the `.sys` format (and most
/// downstream reports) are whitespace-delimited, so map it to '_'.
std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') c = '_';
  }
  return out;
}

}  // namespace

dcf::System lift_control_net(const petri::Net& control,
                             const LiftOptions& options,
                             const std::string& name) {
  using petri::PlaceId;
  using petri::TransitionId;

  dcf::SystemBuilder b;

  // States and transitions in index order, so the ids of the imported net
  // carry over unchanged.
  std::vector<PlaceId> states;
  states.reserve(control.place_count());
  for (PlaceId p : control.places()) {
    const PlaceId s = b.state(sanitize(control.name(p)));
    b.controlnet().net().set_initial_tokens(s, control.initial_tokens(p));
    states.push_back(s);
  }
  for (TransitionId t : control.transitions()) {
    b.transition(sanitize(control.name(t)));
  }

  // Flow arcs: one connect per distinct (source, target) pair carrying
  // the multiset weight.
  std::vector<PlaceId> seen;
  for (TransitionId t : control.transitions()) {
    seen.clear();
    for (PlaceId p : control.pre(t)) {
      if (std::find(seen.begin(), seen.end(), p) != seen.end()) continue;
      seen.push_back(p);
      b.controlnet().net().connect(p, t, control.arc_weight(p, t));
    }
    seen.clear();
    for (PlaceId p : control.post(t)) {
      if (std::find(seen.begin(), seen.end(), p) != seen.end()) continue;
      seen.push_back(p);
      b.controlnet().net().connect(t, p, control.arc_weight(t, p));
    }
  }

  if (options.stub == StubStyle::kRegisterPerState) {
    const dcf::VertexId env = b.input("env");
    for (std::size_t i = 0; i < states.size(); ++i) {
      const dcf::VertexId r = b.reg("r" + std::to_string(i));
      b.connect(env, r, 0, {states[i]});
    }
  }

  return b.build(name);
}

}  // namespace camad::gen
