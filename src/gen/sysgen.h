// Randomized properly-designed System generator at the DCF level.
//
// Where gen/program.h draws structured BDL programs (and reaches
// compilation, parsing and checking through the normal front end), this
// generator builds data/control flow systems *directly* with
// dcf::SystemBuilder, covering shapes the BDL compiler never emits:
//
//   * guard patterns beyond the compiler's kNot complement — a single
//     two-output compare vertex carrying a complementary predicate pair
//     (eq/ne, lt/ge, gt/le), and condition-*register* guarded branches
//     that resolve one cycle after the test state is entered (the
//     one-level register indirection dcf::check's `strip_reg` proves);
//   * multi-write registers (loop counters written by an init state and
//     a decrement state);
//   * control shapes with explicit fork/join helper places.
//
// Construction is driven by an explicit *plan* tree (SysPlan) so that
//   (a) building is deterministic in the plan,
//   (b) a failing system can be minimized by shrinking its plan
//       (gen/shrink.h) and rebuilding, and
//   (c) a plan prints as a compact artifact for the seed corpus.
//
// The same invariants as the program generator hold by construction:
// structured (safe) net, globally disjoint association sets (every step
// latches a *fresh* register; loop counters are written only by states
// of their own loop), partitioned input channels across parallel arms,
// provably exclusive guards, tree-shaped active subgraphs, and counted
// loops. Validated post-hoc by check_properly_designed in the tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dcf/system.h"
#include "util/rng.h"

namespace camad::gen {

enum class PlanKind : std::uint8_t { kStep, kSeq, kPar, kBranch, kLoop };

/// How a kBranch realizes its mutually exclusive guard pair.
enum class GuardStyle : std::uint8_t {
  kNotUnit,      ///< predicate port + kNot complement (compiler pattern)
  kComparePair,  ///< one vertex, two complementary predicate output ports
  kLatchedPair,  ///< two condition registers; branch resolves next cycle
};

/// Recipe node. All selector fields are reduced modulo the size of the
/// pool they index at build time, so any uint32 values are valid — which
/// is what makes plans trivially shrinkable and mutable.
struct SysPlan {
  PlanKind kind = PlanKind::kStep;
  std::vector<SysPlan> children;  ///< kSeq >=1, kPar >=2, kBranch 1..2, kLoop 1

  // kStep: one control state latching op(srcs...) into a fresh register.
  std::uint32_t op = 0;                         ///< step-op table index
  std::uint32_t src_a = 0, src_b = 0, src_c = 0;  ///< source selectors

  // kBranch:
  GuardStyle guard = GuardStyle::kNotUnit;
  std::uint32_t cmp_op = 0;                 ///< compare table index
  std::uint32_t cmp_a = 0, cmp_b = 0;       ///< compare source selectors

  // kLoop:
  std::uint32_t iters = 1;  ///< trip count (clamped to >= 1)
};

struct SystemGenOptions {
  std::size_t num_inputs = 2;   ///< >= 1
  std::size_t max_depth = 3;    ///< composite nesting budget
  std::size_t max_seq = 3;      ///< children per kSeq (>= 1)
  std::size_t max_par = 3;      ///< arms per kPar (>= 2)
  std::uint32_t max_loop_iters = 3;
  double p_par = 0.2;
  double p_branch = 0.25;
  double p_loop = 0.2;
  bool allow_compare_pair_guards = true;
  bool allow_latched_guards = true;
};

/// Draws a plan. Deterministic in the rng state and options.
SysPlan random_plan(Rng& rng, const SystemGenOptions& options = {});

/// Materializes a plan into a validated System (deterministic).
dcf::System build_system(const SysPlan& plan,
                         const SystemGenOptions& options = {},
                         const std::string& name = "gensys");

/// random_plan + build_system; the system is named "gensys_<seed>".
dcf::System random_system(std::uint64_t seed,
                          const SystemGenOptions& options = {});

/// Compact s-expression rendering, e.g. "(seq (step op=3) (loop 2 (...)))".
std::string plan_to_string(const SysPlan& plan);

/// Number of kStep leaves (the shrinker's progress measure).
std::size_t plan_size(const SysPlan& plan);

}  // namespace camad::gen
