// Lifting external control nets into checkable dcf::Systems.
//
// A PNML import is a bare marked Petri net — the control half of the
// paper's Γ = (D, S, T, F, C, G, M0) with no data path attached. To run
// it through machinery that expects a full System (camadc verify, the
// oracle battery, transforms), we wrap it with a synthesized data-path
// stub: the compositional control/data split means the checker's verdicts
// on the control net are unaffected by what the stub computes, while the
// C-mapping still gets exercised end to end.
#pragma once

#include <string>

#include "dcf/system.h"
#include "petri/net.h"

namespace camad::gen {

/// Shape of the synthesized data path.
enum class StubStyle {
  /// Control net only; the data path stays empty. Lightest option — the
  /// model checker never looks at the data path.
  kNone,
  /// One shared environment input plus one register per control state,
  /// each latching through an arc controlled by its state. Every state
  /// has a nonempty C(S), so C-mapping plumbing is exercised.
  kRegisterPerState,
};

struct LiftOptions {
  StubStyle stub = StubStyle::kRegisterPerState;
};

/// Replays `control` (states, transitions, weighted flow arcs, initial
/// marking, names) into a fresh System with a synthesized data path.
/// Place/transition ids are preserved index-for-index. The result is
/// validated before it is returned.
dcf::System lift_control_net(const petri::Net& control,
                             const LiftOptions& options = {},
                             const std::string& name = "imported");

}  // namespace camad::gen
