// Metamorphic transformation oracles over generated systems.
//
// For each seed, the harness draws a properly-designed-by-construction
// input (a BDL program or a DCF plan), materializes the System, and runs
// a fixed battery of oracles, each of which must hold for *every*
// generated input:
//
//   roundtrip   (program level) pretty-print -> parse -> re-print is a
//               fixpoint, and the reparsed program compiles;
//   check       check_properly_designed reports no violations;
//   engines     SimEngine::kReference and SimEngine::kCompiled produce
//               bit-identical results (trace, termination, violations,
//               final registers) under identical environments — PR 1's
//               differential contract, quantified over generated systems;
//   transforms  a seed-derived random chain of semantics-preserving
//               passes (parallelize, merge_all, share_registers,
//               chain_states, cleanup_control) keeps the checker green at
//               every step and preserves the external event structure
//               (semantics::differential_equivalence against the
//               untransformed system);
//   fold        (program level) compiling the constant-folded program is
//               observationally equivalent to compiling the original;
//   io          (system level) save_system -> load_system round-trips to
//               an equivalent, re-serialization-stable system;
//   pnml        (system level) to_pnml -> from_pnml reconstructs a
//               structurally identical control net and re-export is a
//               byte-exact fixpoint.
//
// A failing seed is minimized with gen/shrink.h under a predicate that
// reruns the battery and demands the *same stage* fail, then reported
// with a ready-to-check-in corpus line and a human-readable artifact
// (shrunk BDL source / plan s-expression).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gen/program.h"
#include "gen/sysgen.h"

namespace camad::gen {

enum class OracleLevel : std::uint8_t {
  kProgram,  ///< BDL generator -> synth::compile front door
  kSystem,   ///< SysPlan generator -> dcf::SystemBuilder back door
};

std::string_view level_name(OracleLevel level);

struct OracleOptions {
  ProgramGenOptions program;
  SystemGenOptions system;
  /// Environments / stream length / cycle bound for every simulation the
  /// battery runs. Generated systems are small; keep these tight. The
  /// stream length is generous on purpose: equivalence of the
  /// transformations is assessed under *non-exhausting* environments
  /// (the Def 3.5 operating contract regshare's definedness analysis
  /// assumes) — streams must outlast every bounded loop of a generated
  /// system.
  std::size_t environments = 2;
  std::size_t stream_length = 256;
  std::uint64_t max_cycles = 5000;
  /// Passes per random transformation chain (0 disables the stage).
  std::size_t max_transform_steps = 3;
  /// Route the transformation chain through transform::PassPipeline's
  /// machinery (registered passes + one AnalysisCache threaded across
  /// the chain via successor()) instead of direct calls. Same seeds draw
  /// the same chains either way, so the two routes are differential
  /// oracles for each other — and the cached route additionally stresses
  /// every pass's PreservedAnalyses declaration, because the checker and
  /// the equivalence oracle observe the carried analyses' consequences.
  bool use_pass_pipeline = false;
  bool check_roundtrip = true;
  bool check_fold = true;
  bool check_io = true;
  /// (system level) to_pnml -> from_pnml returns a structurally
  /// identical control net, and re-export is a byte-exact fixpoint —
  /// the PNML interchange path quantified over generated systems.
  bool check_pnml = true;
  /// Cross-check the mc model checker against the petri explorer on
  /// every generated system (stage "mc"): unguarded mc must reproduce
  /// petri::explore's verdicts and concurrency relation bit-for-bit,
  /// the guard-aware run must be a refinement of the unguarded one
  /// (fewer markings, subset concurrency, implied safety), and every
  /// witness trace must replay to its claimed marking.
  bool mc_crosscheck = false;
  /// Minimize failures before reporting (costs predicate re-runs).
  bool shrink_failures = true;
  std::size_t max_shrink_attempts = 400;
};

struct OracleOutcome {
  std::uint64_t seed = 0;
  OracleLevel level = OracleLevel::kProgram;
  bool ok = true;
  std::string stage;     ///< failing oracle ("check", "engines", ...)
  std::string detail;    ///< first divergence / violation / exception
  std::string artifact;  ///< shrunk BDL source or plan s-expression

  /// One-line rendering: "seed <n> [<level>] ok" or the failure summary.
  [[nodiscard]] std::string to_string() const;
  /// The corpus line that reproduces this failure (see parse_corpus).
  [[nodiscard]] std::string corpus_line() const;
};

/// Runs the battery on one seed at one level.
OracleOutcome run_seed(std::uint64_t seed, OracleLevel level,
                       const OracleOptions& options = {});

/// Runs both levels for each of `count` consecutive seeds; returns only
/// failures (empty result == all green). Deterministic in (first, count,
/// options).
std::vector<OracleOutcome> run_seed_range(std::uint64_t first,
                                          std::size_t count,
                                          const OracleOptions& options = {});

/// Battery entry points over pre-drawn inputs (used by the shrinker's
/// predicate and by tests that construct inputs directly).
OracleOutcome run_program_oracle(const synth::Program& program,
                                 std::uint64_t seed,
                                 const OracleOptions& options = {});
OracleOutcome run_plan_oracle(const SysPlan& plan, std::uint64_t seed,
                              const OracleOptions& options = {});

// --- seed corpus ------------------------------------------------------------
//
// tests/corpus/seeds.txt holds one line per registered counterexample:
//
//   <level> <seed> [# comment]
//
// with <level> in {program, system}. Blank lines and full-line comments
// (leading '#') are skipped.

struct CorpusEntry {
  OracleLevel level = OracleLevel::kProgram;
  std::uint64_t seed = 0;
  std::string note;
};

std::vector<CorpusEntry> parse_corpus(const std::string& text);
/// Reads and parses a corpus file; throws Error when unreadable.
std::vector<CorpusEntry> load_corpus_file(const std::string& path);

}  // namespace camad::gen
