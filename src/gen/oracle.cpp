#include "gen/oracle.h"

#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "dcf/check.h"
#include "dcf/io.h"
#include "gen/shrink.h"
#include "mc/checker.h"
#include "petri/export.h"
#include "petri/pnml.h"
#include "petri/reachability.h"
#include "obs/trace.h"
#include "semantics/analysis.h"
#include "semantics/equivalence.h"
#include "sim/batch.h"
#include "sim/environment.h"
#include "sim/lanes.h"
#include "sim/simulator.h"
#include "synth/ast.h"
#include "synth/compile.h"
#include "synth/fold.h"
#include "synth/parser.h"
#include "transform/chain.h"
#include "transform/cleanup.h"
#include "transform/merge.h"
#include "transform/parallelize.h"
#include "transform/passes.h"
#include "transform/regshare.h"
#include "util/error.h"
#include "util/rng.h"

namespace camad::gen {
namespace {

/// A battery stage failed: abort the seed with (stage, detail).
struct StageFailure {
  std::string stage;
  std::string detail;
};

std::string describe(const std::exception& e) { return e.what(); }

// --- engine differential ----------------------------------------------------

std::string compare_results(const sim::SimResult& ref,
                            const sim::SimResult& com) {
  std::ostringstream os;
  if (ref.cycles != com.cycles) {
    os << "cycles " << ref.cycles << " vs " << com.cycles;
    return os.str();
  }
  if (ref.terminated != com.terminated || ref.deadlocked != com.deadlocked) {
    os << "terminated/deadlocked " << ref.terminated << "/" << ref.deadlocked
       << " vs " << com.terminated << "/" << com.deadlocked;
    return os.str();
  }
  if (ref.violations != com.violations) {
    return "runtime violation lists differ";
  }
  if (ref.final_registers != com.final_registers) {
    return "final register states differ";
  }
  if (ref.trace.cycles.size() != com.trace.cycles.size()) {
    return "trace lengths differ";
  }
  for (std::size_t i = 0; i < ref.trace.cycles.size(); ++i) {
    const sim::CycleRecord& a = ref.trace.cycles[i];
    const sim::CycleRecord& b = com.trace.cycles[i];
    if (a.cycle != b.cycle || a.marked != b.marked || a.fired != b.fired ||
        a.events != b.events || a.registers != b.registers) {
      os << "trace diverges at cycle " << a.cycle;
      return os.str();
    }
  }
  return {};
}

/// All plan-based engines must be bit-identical to kReference under
/// every policy: kCompiled, kSparse (change-propagation wavefronts) and
/// the lockstep lane engine. The battery only reaches this stage on
/// properly-designed systems (the "check" stage runs first), so the
/// improper-design carve-out — where divergence is tolerated — is
/// exercised by the dedicated unit tests, not by the sweep.
void engine_differential(const dcf::System& system, std::uint64_t seed,
                         const OracleOptions& opt) {
  const obs::ObsSpan span("oracle.engines");
  const sim::FiringPolicy policies[] = {sim::FiringPolicy::kMaximalStep,
                                        sim::FiringPolicy::kRandomOrder};
  std::vector<sim::BatchRun> lane_runs;
  std::vector<sim::SimResult> lane_oracle;
  for (std::size_t e = 0; e < opt.environments; ++e) {
    for (const sim::FiringPolicy policy : policies) {
      sim::Environment env = sim::Environment::random_for(
          system, seed * 1315423911ULL + e, opt.stream_length, 0, 99);
      sim::SimOptions so;
      so.max_cycles = opt.max_cycles;
      so.policy = policy;
      so.seed = seed + e;
      so.record_registers = true;

      lane_runs.push_back(sim::BatchRun{env, so});

      so.engine = sim::SimEngine::kReference;
      const sim::SimResult ref = sim::simulate(system, env, so);
      env.rewind();
      so.engine = sim::SimEngine::kCompiled;
      sim::SimResult com = sim::simulate(system, env, so);
      env.rewind();
      so.engine = sim::SimEngine::kSparse;
      const sim::SimResult sparse = sim::simulate(system, env, so);

      const std::string label = "env " + std::to_string(e) + " policy " +
                                std::to_string(static_cast<int>(policy));
      std::string diff = compare_results(ref, com);
      if (!diff.empty()) {
        throw StageFailure{"engines", label + ": " + diff};
      }
      diff = compare_results(ref, sparse);
      if (!diff.empty()) {
        throw StageFailure{"engines", label + " [sparse]: " + diff};
      }
      lane_oracle.push_back(std::move(com));
    }
  }

  // Lane crosscheck: all (environment, policy) runs packed into one
  // lockstep block must reproduce the sequential results positionally.
  const std::vector<sim::SimResult> laned =
      sim::simulate_lanes(system, lane_runs);
  for (std::size_t i = 0; i < laned.size(); ++i) {
    const std::string diff = compare_results(lane_oracle[i], laned[i]);
    if (!diff.empty()) {
      throw StageFailure{"engines",
                         "lane " + std::to_string(i) + ": " + diff};
    }
  }
}

// --- transformation chain ---------------------------------------------------

struct Pass {
  const char* name;
  dcf::System (*apply)(const dcf::System&);
};

const Pass kPasses[] = {
    {"parallelize",
     [](const dcf::System& s) { return transform::parallelize(s); }},
    {"merge_all",
     [](const dcf::System& s) { return transform::merge_all(s); }},
    {"share_registers",
     [](const dcf::System& s) { return transform::share_registers(s); }},
    {"chain_states",
     [](const dcf::System& s) { return transform::chain_states(s); }},
    {"cleanup_control",
     [](const dcf::System& s) { return transform::cleanup_control(s); }},
};

/// Registered-pass names aligned index-for-index with kPasses, for the
/// use_pass_pipeline route.
const char* const kRegisteredNames[] = {"parallelize", "merge-all",
                                        "regshare", "chain", "cleanup"};
static_assert(std::size(kRegisteredNames) == std::size(kPasses));

semantics::DifferentialOptions differential_options(
    std::uint64_t seed, const OracleOptions& opt) {
  semantics::DifferentialOptions d;
  d.environments = opt.environments;
  d.seed = seed * 2654435761ULL + 17;
  d.stream_length = opt.stream_length;
  d.sim.max_cycles = opt.max_cycles;
  return d;
}

/// Applies a seed-derived chain of passes; after every pass the checker
/// must stay green and the result must stay observationally equivalent
/// to the *untransformed* system.
void transform_chain(const dcf::System& original, std::uint64_t seed,
                     const OracleOptions& opt) {
  if (opt.max_transform_steps == 0) return;
  const obs::ObsSpan span("oracle.transforms");
  Rng rng(seed ^ 0x7472616e73666fULL);
  const std::size_t steps = 1 + rng.below(opt.max_transform_steps);
  dcf::System current = original;
  // Pipeline route: one cache threaded across the chain; each pass's
  // declared-preserved analyses carry over, and the checker below reads
  // the carried results.
  std::optional<semantics::AnalysisCache> cache;
  if (opt.use_pass_pipeline) cache.emplace(current);
  std::string chain;
  for (std::size_t i = 0; i < steps; ++i) {
    const std::size_t pick = rng.below(std::size(kPasses));
    const Pass& pass = kPasses[pick];
    chain += (chain.empty() ? "" : " -> ") + std::string(pass.name);
    try {
      if (cache.has_value()) {
        const std::unique_ptr<transform::Pass> registered =
            transform::make_pass(kRegisteredNames[pick]);
        dcf::System next = registered->run(current, *cache);
        current = std::move(next);
        cache = cache->successor(current, registered->preserves());
      } else {
        current = pass.apply(current);
      }
    } catch (const Error& e) {
      throw StageFailure{"transforms", chain + " threw: " + describe(e)};
    }
    const dcf::CheckReport report =
        cache.has_value() ? dcf::check_properly_designed(current, *cache)
                          : dcf::check_properly_designed(current);
    if (!report.ok()) {
      throw StageFailure{"transforms",
                         chain + " broke the checker: " + report.to_string()};
    }
    const semantics::EquivalenceVerdict verdict =
        semantics::differential_equivalence(
            original, current, differential_options(seed + i, opt));
    if (!verdict.holds) {
      throw StageFailure{"transforms",
                         chain + " changed observable behaviour: " +
                             verdict.why};
    }
  }
}

// --- model-checker cross-check ----------------------------------------------

/// Replays a witness trace and demands it reaches the claimed marking.
void require_witness_replays(const petri::Net& net, const char* what,
                             const std::optional<petri::Marking>& witness,
                             const std::vector<petri::TransitionId>& trace) {
  if (!witness.has_value()) return;
  const std::optional<petri::Marking> replayed =
      mc::replay_trace(net, trace);
  if (!replayed.has_value()) {
    throw StageFailure{"mc", std::string(what) +
                                 " witness trace has a disabled step"};
  }
  if (!(*replayed == *witness)) {
    throw StageFailure{"mc", std::string(what) +
                                 " witness trace replays to a different "
                                 "marking"};
  }
}

/// Stage "mc": the model checker vs the petri explorer on one system.
void mc_crosscheck_stage(const dcf::System& system,
                         const OracleOptions& opt) {
  if (!opt.mc_crosscheck) return;
  const obs::ObsSpan span("oracle.mc");
  const petri::Net& net = system.control().net();
  const petri::ReachabilityOptions ro;

  mc::McOptions mo;
  mo.max_states = ro.max_markings;
  mo.token_bound = ro.token_bound;
  const mc::McResult bare = mc::model_check(net, mo);
  const mc::McResult guarded = mc::model_check(system, mo);
  require_witness_replays(net, "bare unsafe", bare.unsafe_witness,
                          bare.unsafe_trace);
  require_witness_replays(net, "bare deadlock", bare.deadlock_witness,
                          bare.deadlock_trace);
  require_witness_replays(net, "guarded unsafe", guarded.unsafe_witness,
                          guarded.unsafe_trace);
  require_witness_replays(net, "guarded deadlock",
                          guarded.deadlock_witness, guarded.deadlock_trace);

  // Unguarded mc must reproduce the petri explorer bit-for-bit. The two
  // stop at different granularities when the budget bites (mid-expansion
  // vs level boundary), so verdicts are only comparable on complete runs.
  const petri::ConcurrencyRelation ref =
      petri::concurrent_places_bounded(net, ro);
  if (ref.exploration.complete && bare.complete) {
    const petri::ReachabilityResult& re = ref.exploration;
    if (bare.safe != re.safe || bare.bounded != re.bounded ||
        bare.deadlock != re.deadlock ||
        bare.can_terminate != re.can_terminate ||
        bare.marking_count != re.marking_count) {
      throw StageFailure{
          "mc", "unguarded mc verdicts diverge from petri::explore"};
    }
    if (bare.concurrency != ref.concurrent) {
      throw StageFailure{
          "mc",
          "unguarded mc concurrency diverges from concurrent_places"};
    }
  }

  // The guard-aware run is a refinement: it explores a subset of the
  // unguarded markings, so safety is implied and every relation shrinks.
  if (bare.complete && guarded.complete) {
    if (bare.safe && !guarded.safe) {
      throw StageFailure{"mc",
                         "unguarded-safe but guard-aware run is unsafe"};
    }
    if (guarded.marking_count > bare.marking_count) {
      throw StageFailure{"mc", "guard-aware run visited more markings (" +
                                   std::to_string(guarded.marking_count) +
                                   ") than the unguarded run (" +
                                   std::to_string(bare.marking_count) +
                                   ")"};
    }
    for (std::size_t i = 0; i < guarded.concurrency.size(); ++i) {
      if (guarded.concurrency[i] && !bare.concurrency[i]) {
        throw StageFailure{
            "mc", "guard-aware concurrency is not a subset of unguarded"};
      }
    }
  }
}

// --- per-level batteries ----------------------------------------------------

void run_system_battery(const dcf::System& system, std::uint64_t seed,
                        const OracleOptions& opt, bool io_stage) {
  {
    const obs::ObsSpan span("oracle.check");
    const dcf::CheckReport report = dcf::check_properly_designed(system);
    if (!report.ok()) {
      throw StageFailure{"check", report.to_string()};
    }
  }
  mc_crosscheck_stage(system, opt);
  engine_differential(system, seed, opt);
  transform_chain(system, seed, opt);
  if (io_stage && opt.check_io) {
    const obs::ObsSpan span("oracle.io");
    std::string text;
    try {
      text = dcf::save_system(system);
      const dcf::System loaded = dcf::load_system(text);
      if (dcf::save_system(loaded) != text) {
        throw StageFailure{"io", "re-serialization is not a fixpoint"};
      }
      const semantics::EquivalenceVerdict verdict =
          semantics::differential_equivalence(
              system, loaded, differential_options(seed, opt));
      if (!verdict.holds) {
        throw StageFailure{"io", "loaded system diverges: " + verdict.why};
      }
    } catch (const Error& e) {
      throw StageFailure{"io", describe(e)};
    }
  }
  if (io_stage && opt.check_pnml) {
    const obs::ObsSpan span("oracle.pnml");
    try {
      const petri::Net& net = system.control().net();
      const std::string text = petri::to_pnml(net, system.name());
      const petri::PnmlImport imported = petri::from_pnml(text);
      if (!petri::same_structure(imported.net, net)) {
        throw StageFailure{"pnml",
                           "from_pnml(to_pnml(net)) is not isomorphic"};
      }
      if (petri::to_pnml(imported.net, system.name()) != text) {
        throw StageFailure{"pnml", "re-export is not a byte-exact fixpoint"};
      }
    } catch (const Error& e) {
      throw StageFailure{"pnml", describe(e)};
    }
  }
}

void run_program_battery(const synth::Program& program, std::uint64_t seed,
                         const OracleOptions& opt) {
  std::string source;
  dcf::System system = [&] {
    const obs::ObsSpan span("oracle.compile");
    try {
      source = synth::to_source(program);
      return synth::compile(program);
    } catch (const Error& e) {
      throw StageFailure{"compile", describe(e)};
    }
  }();

  if (opt.check_roundtrip) {
    const obs::ObsSpan span("oracle.roundtrip");
    try {
      const synth::Program reparsed = synth::parse_program(source);
      if (synth::to_source(reparsed) != source) {
        throw StageFailure{"roundtrip", "print -> parse -> print moved"};
      }
      (void)synth::compile(reparsed);
    } catch (const Error& e) {
      throw StageFailure{"roundtrip", describe(e)};
    }
  }

  run_system_battery(system, seed, opt, /*io_stage=*/false);

  if (opt.check_fold) {
    const obs::ObsSpan span("oracle.fold");
    try {
      synth::Program folded = clone_program(program);
      (void)synth::fold_constants(folded);
      const dcf::System folded_system = synth::compile(folded);
      const semantics::EquivalenceVerdict verdict =
          semantics::differential_equivalence(
              system, folded_system, differential_options(seed, opt));
      if (!verdict.holds) {
        throw StageFailure{"fold",
                           "folded program diverges: " + verdict.why};
      }
    } catch (const Error& e) {
      throw StageFailure{"fold", describe(e)};
    }
  }
}

OracleOutcome outcome_for(std::uint64_t seed, OracleLevel level) {
  OracleOutcome out;
  out.seed = seed;
  out.level = level;
  return out;
}

}  // namespace

std::string_view level_name(OracleLevel level) {
  return level == OracleLevel::kProgram ? "program" : "system";
}

std::string OracleOutcome::to_string() const {
  std::ostringstream os;
  os << "seed " << seed << " [" << level_name(level) << "] ";
  if (ok) {
    os << "ok";
  } else {
    os << "FAILED at " << stage << ": " << detail;
    if (!artifact.empty()) os << "\n--- shrunk artifact ---\n" << artifact;
  }
  return os.str();
}

std::string OracleOutcome::corpus_line() const {
  std::ostringstream os;
  os << level_name(level) << ' ' << seed;
  if (!ok) {
    os << "  # " << stage;
    const std::string first = detail.substr(0, detail.find('\n'));
    if (!first.empty()) os << ": " << first;
  }
  return os.str();
}

OracleOutcome run_program_oracle(const synth::Program& program,
                                 std::uint64_t seed,
                                 const OracleOptions& options) {
  OracleOutcome out = outcome_for(seed, OracleLevel::kProgram);
  try {
    run_program_battery(program, seed, options);
  } catch (const StageFailure& f) {
    out.ok = false;
    out.stage = f.stage;
    out.detail = f.detail;
  } catch (const std::exception& e) {
    out.ok = false;
    out.stage = "unexpected";
    out.detail = describe(e);
  }
  return out;
}

OracleOutcome run_plan_oracle(const SysPlan& plan, std::uint64_t seed,
                              const OracleOptions& options) {
  OracleOutcome out = outcome_for(seed, OracleLevel::kSystem);
  try {
    const dcf::System system = [&] {
      const obs::ObsSpan span("oracle.build");
      try {
        return build_system(plan, options.system,
                            "gensys_" + std::to_string(seed));
      } catch (const Error& e) {
        throw StageFailure{"build", describe(e)};
      }
    }();
    run_system_battery(system, seed, options, /*io_stage=*/true);
  } catch (const StageFailure& f) {
    out.ok = false;
    out.stage = f.stage;
    out.detail = f.detail;
  } catch (const std::exception& e) {
    out.ok = false;
    out.stage = "unexpected";
    out.detail = describe(e);
  }
  return out;
}

OracleOutcome run_seed(std::uint64_t seed, OracleLevel level,
                       const OracleOptions& options) {
  const obs::ObsSpan seed_span("oracle.seed", [&] {
    return "{\"seed\":" + std::to_string(seed) + ",\"level\":\"" +
           std::string(level_name(level)) + "\"}";
  });
  if (level == OracleLevel::kProgram) {
    const synth::Program program = random_program(seed, options.program);
    OracleOutcome out = run_program_oracle(program, seed, options);
    out.artifact = synth::to_source(program);
    if (!out.ok && options.shrink_failures) {
      const std::string stage = out.stage;
      const synth::Program shrunk = shrink_program(
          program,
          [&](const synth::Program& candidate) {
            const OracleOutcome o =
                run_program_oracle(candidate, seed, options);
            return !o.ok && o.stage == stage;
          },
          options.max_shrink_attempts);
      out = run_program_oracle(shrunk, seed, options);
      out.artifact = synth::to_source(shrunk);
    }
    return out;
  }

  Rng rng(seed);
  const SysPlan plan = random_plan(rng, options.system);
  OracleOutcome out = run_plan_oracle(plan, seed, options);
  out.artifact = plan_to_string(plan);
  if (!out.ok && options.shrink_failures) {
    const std::string stage = out.stage;
    const SysPlan shrunk = shrink_plan(
        plan,
        [&](const SysPlan& candidate) {
          const OracleOutcome o = run_plan_oracle(candidate, seed, options);
          return !o.ok && o.stage == stage;
        },
        options.max_shrink_attempts);
    out = run_plan_oracle(shrunk, seed, options);
    out.artifact = plan_to_string(shrunk);
  }
  return out;
}

std::vector<OracleOutcome> run_seed_range(std::uint64_t first,
                                          std::size_t count,
                                          const OracleOptions& options) {
  std::vector<OracleOutcome> failures;
  for (std::size_t i = 0; i < count; ++i) {
    for (const OracleLevel level :
         {OracleLevel::kProgram, OracleLevel::kSystem}) {
      OracleOutcome out = run_seed(first + i, level, options);
      if (!out.ok) failures.push_back(std::move(out));
    }
  }
  return failures;
}

std::vector<CorpusEntry> parse_corpus(const std::string& text) {
  std::vector<CorpusEntry> out;
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    std::istringstream fields(line.substr(start));
    std::string level_word;
    std::uint64_t seed = 0;
    if (!(fields >> level_word >> seed)) {
      throw ModelError("corpus line " + std::to_string(lineno) +
                       ": expected '<level> <seed>', got '" + line + "'");
    }
    CorpusEntry entry;
    if (level_word == "program") {
      entry.level = OracleLevel::kProgram;
    } else if (level_word == "system") {
      entry.level = OracleLevel::kSystem;
    } else {
      throw ModelError("corpus line " + std::to_string(lineno) +
                       ": unknown level '" + level_word + "'");
    }
    entry.seed = seed;
    std::string rest;
    std::getline(fields, rest);
    const std::size_t hash = rest.find('#');
    if (hash != std::string::npos) {
      const std::size_t note = rest.find_first_not_of(" \t", hash + 1);
      if (note != std::string::npos) entry.note = rest.substr(note);
    }
    out.push_back(std::move(entry));
  }
  return out;
}

std::vector<CorpusEntry> load_corpus_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot read corpus file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_corpus(buffer.str());
}

}  // namespace camad::gen
