#include "gen/sysgen.h"

#include <algorithm>
#include <sstream>
#include <utility>
#include <variant>

#include "dcf/builder.h"
#include "dcf/ops.h"
#include "util/error.h"

namespace camad::gen {
namespace {

using dcf::OpCode;
using dcf::PortId;
using dcf::VertexId;
using petri::PlaceId;
using petri::TransitionId;

/// Step operations: anything computable from general sources. Partial
/// ops (div/shift) are legal — ⊥ is a value, and both engines and all
/// transformations must agree on it.
constexpr OpCode kStepOps[] = {
    OpCode::kAdd, OpCode::kSub, OpCode::kMul, OpCode::kAnd, OpCode::kOr,
    OpCode::kXor, OpCode::kLt,  OpCode::kEq,  OpCode::kShl, OpCode::kDiv,
    OpCode::kMux, OpCode::kPass,
};

/// Complementary predicate pairs for kComparePair guards.
constexpr std::pair<OpCode, OpCode> kComparePairs[] = {
    {OpCode::kEq, OpCode::kNe},
    {OpCode::kLt, OpCode::kGe},
    {OpCode::kGt, OpCode::kLe},
};

/// Plain compare ops for the kNotUnit / kLatchedPair styles.
constexpr OpCode kCompareOps[] = {
    OpCode::kEq, OpCode::kNe, OpCode::kLt, OpCode::kLe,
    OpCode::kGt, OpCode::kGe,
};

using End = std::variant<PlaceId, TransitionId>;

struct Fragment {
  PlaceId entry;
  std::vector<End> ends;
};

/// Value sources visible to one build context. `regs` holds registers
/// written by *already-built* (hence sequentially preceding) states —
/// parallel arms each get a snapshot, so no arm reads a sibling's
/// registers. `inputs` are environment channels, partitioned round-robin
/// across arms so no two parallel states share a stream.
struct Pool {
  std::vector<PortId> regs;    ///< register output ports (+ constants)
  std::vector<PortId> inputs;  ///< input-vertex output ports

  [[nodiscard]] PortId select(std::uint32_t selector) const {
    const std::size_t total = regs.size() + inputs.size();
    const std::size_t k = selector % total;
    return k < regs.size() ? regs[k] : inputs[k - regs.size()];
  }
  /// Restricted to always-defined-early sources (constants sit at the
  /// front of `regs`) plus inputs — used by kLatchedPair guards, where a
  /// ⊥ compare would deadlock the branch forever.
  [[nodiscard]] PortId select_defined(std::uint32_t selector,
                                      std::size_t num_consts) const {
    const std::size_t total = num_consts + inputs.size();
    const std::size_t k = selector % total;
    return k < num_consts ? regs[k] : inputs[k - num_consts];
  }
};

class SysBuilder {
 public:
  SysBuilder(const SysPlan& plan, const SystemGenOptions& opt,
             std::string name)
      : plan_(plan), opt_(opt), name_(std::move(name)) {}

  dcf::System run() {
    Pool pool;
    for (std::size_t i = 0;
         i < std::max<std::size_t>(1, opt_.num_inputs); ++i) {
      const VertexId in = b_.input("a" + std::to_string(i));
      pool.inputs.push_back(b_.out(in));
    }
    // Constant seed sources, always defined from cycle zero.
    for (std::int64_t c : {2, 3, 5}) {
      pool.regs.push_back(
          b_.out(b_.constant(fresh("k" + std::to_string(c)), c)));
    }
    num_consts_ = pool.regs.size();

    Fragment body = build(plan_, pool);

    // Epilogue: observe the most recently written register (or a
    // constant if the plan degenerated to nothing).
    const VertexId out = b_.output("o0");
    const PlaceId s_out = b_.state(fresh("Sout"));
    b_.arc(pool.regs.back(), b_.in(out), {s_out});
    attach(body.ends, s_out);
    const TransitionId t_end = b_.transition(fresh("Tend"));
    b_.flow(s_out, t_end);  // empty post-set: terminates with zero tokens

    b_.controlnet().net().set_initial_tokens(body.entry, 1);
    return b_.build(name_);
  }

 private:
  std::string fresh(const std::string& base) {
    return base + "_" + std::to_string(counter_++);
  }

  void attach(const std::vector<End>& ends, PlaceId to) {
    for (const End& end : ends) {
      if (const auto* place = std::get_if<PlaceId>(&end)) {
        const TransitionId t = b_.transition(fresh("T"));
        b_.flow(*place, t);
        b_.flow(t, to);
      } else {
        b_.flow(std::get<TransitionId>(end), to);
      }
    }
  }

  Fragment build(const SysPlan& node, Pool& pool) {
    switch (node.kind) {
      case PlanKind::kStep: return build_step(node, pool);
      case PlanKind::kSeq: return build_seq(node, pool);
      case PlanKind::kPar: return build_par(node, pool);
      case PlanKind::kBranch: return build_branch(node, pool);
      case PlanKind::kLoop: return build_loop(node, pool);
    }
    throw ModelError("gen: unreachable plan kind");
  }

  Fragment build_step(const SysPlan& node, Pool& pool) {
    const OpCode op = kStepOps[node.op % std::size(kStepOps)];
    const PlaceId s = b_.state(fresh("Sstep"));
    const VertexId unit = b_.unit(fresh(std::string(dcf::op_name(op))), op);
    const std::uint32_t selectors[] = {node.src_a, node.src_b, node.src_c};
    const int arity = dcf::op_arity(op);
    for (int k = 0; k < arity; ++k) {
      b_.arc(pool.select(selectors[k]), b_.in(unit, static_cast<size_t>(k)),
             {s});
    }
    const VertexId reg = b_.reg(fresh("r"));
    b_.arc(b_.out(unit), b_.in(reg), {s});
    pool.regs.push_back(b_.out(reg));
    return Fragment{s, {End{s}}};
  }

  Fragment build_seq(const SysPlan& node, Pool& pool) {
    Fragment result;
    bool first = true;
    for (const SysPlan& child : node.children) {
      Fragment f = build(child, pool);
      if (first) {
        result.entry = f.entry;
        first = false;
      } else {
        attach(result.ends, f.entry);
      }
      result.ends = std::move(f.ends);
    }
    if (first) {
      const PlaceId s = b_.state(fresh("Snop"));
      result = Fragment{s, {End{s}}};
    }
    return result;
  }

  Fragment build_par(const SysPlan& node, Pool& pool) {
    const PlaceId s_fork = b_.state(fresh("Spar"));
    const TransitionId t_fork = b_.transition(fresh("Tfork"));
    b_.flow(s_fork, t_fork);
    const TransitionId t_join = b_.transition(fresh("Tjoin"));

    const std::size_t arms = node.children.size();
    std::vector<PortId> joined_regs;
    for (std::size_t i = 0; i < arms; ++i) {
      // Snapshot: arms never see sibling-created registers, and the
      // input channels are partitioned round-robin — no stream races.
      Pool arm_pool;
      arm_pool.regs = pool.regs;
      for (std::size_t k = i; k < pool.inputs.size(); k += arms) {
        arm_pool.inputs.push_back(pool.inputs[k]);
      }
      const std::size_t before = arm_pool.regs.size();
      const Fragment f = build(node.children[i], arm_pool);
      joined_regs.insert(joined_regs.end(),
                         arm_pool.regs.begin() +
                             static_cast<std::ptrdiff_t>(before),
                         arm_pool.regs.end());
      b_.flow(t_fork, f.entry);
      if (f.ends.size() == 1 && std::holds_alternative<PlaceId>(f.ends[0])) {
        b_.flow(std::get<PlaceId>(f.ends[0]), t_join);
      } else {
        const PlaceId collect = b_.state(fresh("Sjoin"));
        attach(f.ends, collect);
        b_.flow(collect, t_join);
      }
    }
    // After the join everything is sequential again: all arm results
    // become readable.
    pool.regs.insert(pool.regs.end(), joined_regs.begin(), joined_regs.end());
    return Fragment{s_fork, {End{t_join}}};
  }

  /// Builds the guard pair for a branch/loop test state. Returns the two
  /// ports guarding the positive / negative exits.
  std::pair<PortId, PortId> build_guard_pair(const SysPlan& node,
                                             PlaceId s_test, PortId lhs,
                                             PortId rhs) {
    GuardStyle style = node.guard;
    if (style == GuardStyle::kComparePair && !opt_.allow_compare_pair_guards) {
      style = GuardStyle::kNotUnit;
    }
    if (style == GuardStyle::kLatchedPair && !opt_.allow_latched_guards) {
      style = GuardStyle::kNotUnit;
    }

    if (style == GuardStyle::kComparePair) {
      // One vertex, two complementary predicate outputs over shared
      // inputs — the second complementary pattern dcf::check proves.
      const auto [pos_op, neg_op] =
          kComparePairs[node.cmp_op % std::size(kComparePairs)];
      dcf::DataPath& dp = b_.datapath();
      const VertexId v = dp.add_vertex(fresh("cmp2"));
      dp.add_input_port(v, "l");
      dp.add_input_port(v, "r");
      const PortId pos = dp.add_output_port(v, {pos_op, 0}, "pos");
      const PortId neg = dp.add_output_port(v, {neg_op, 0}, "neg");
      b_.arc(lhs, b_.in(v, 0), {s_test});
      b_.arc(rhs, b_.in(v, 1), {s_test});
      // Rule 5: the test state must latch something sequential.
      const VertexId flag = b_.reg(fresh("flag"));
      b_.arc(pos, b_.in(flag), {s_test});
      return {pos, neg};
    }

    const OpCode cmp_op = kCompareOps[node.cmp_op % std::size(kCompareOps)];
    const VertexId cmp = b_.unit(fresh("cmp"), cmp_op);
    b_.arc(lhs, b_.in(cmp, 0), {s_test});
    b_.arc(rhs, b_.in(cmp, 1), {s_test});
    const VertexId inv = b_.unit(fresh("not"), OpCode::kNot);
    b_.arc(b_.out(cmp), b_.in(inv), {s_test});

    if (style == GuardStyle::kLatchedPair) {
      // Condition registers: the branch fires one cycle after entry,
      // off the values latched at the end of the first test cycle.
      const VertexId rpos = b_.reg(fresh("cpos"));
      const VertexId rneg = b_.reg(fresh("cneg"));
      b_.arc(b_.out(cmp), b_.in(rpos), {s_test});
      b_.arc(b_.out(inv), b_.in(rneg), {s_test});
      return {b_.out(rpos), b_.out(rneg)};
    }

    // kNotUnit: combinational guards, flag register for rule 5.
    const VertexId flag = b_.reg(fresh("flag"));
    b_.arc(b_.out(cmp), b_.in(flag), {s_test});
    return {b_.out(cmp), b_.out(inv)};
  }

  Fragment build_branch(const SysPlan& node, Pool& pool) {
    const PlaceId s_test = b_.state(fresh("Sif"));
    // kLatchedPair compares only always-defined sources: a ⊥ condition
    // register would stall the branch forever.
    const bool latched = node.guard == GuardStyle::kLatchedPair &&
                         opt_.allow_latched_guards;
    const PortId lhs = latched ? pool.select_defined(node.cmp_a, num_consts_)
                               : pool.select(node.cmp_a);
    const PortId rhs = latched ? pool.select_defined(node.cmp_b, num_consts_)
                               : pool.select(node.cmp_b);
    const auto [pos, neg] = build_guard_pair(node, s_test, lhs, rhs);

    // Arms get snapshots (exclusive at runtime, parallel under the
    // structural ∥ — same discipline as true parallelism).
    const std::size_t base = pool.regs.size();
    Pool then_pool;
    then_pool.regs = pool.regs;
    Pool else_pool;
    else_pool.regs = pool.regs;
    for (std::size_t k = 0; k < pool.inputs.size(); ++k) {
      (k % 2 == 0 ? then_pool : else_pool).inputs.push_back(pool.inputs[k]);
    }

    const Fragment then_frag = build(node.children.at(0), then_pool);
    const TransitionId t_then = b_.transition(fresh("Tthen"));
    b_.guard(t_then, pos);
    b_.flow(s_test, t_then);
    b_.flow(t_then, then_frag.entry);

    Fragment result{s_test, then_frag.ends};
    if (node.children.size() > 1) {
      const Fragment else_frag = build(node.children[1], else_pool);
      const TransitionId t_else = b_.transition(fresh("Telse"));
      b_.guard(t_else, neg);
      b_.flow(s_test, t_else);
      b_.flow(t_else, else_frag.entry);
      result.ends.insert(result.ends.end(), else_frag.ends.begin(),
                         else_frag.ends.end());
    } else {
      const TransitionId t_skip = b_.transition(fresh("Tskip"));
      b_.guard(t_skip, neg);
      b_.flow(s_test, t_skip);
      result.ends.push_back(End{t_skip});
    }
    // Registers written inside either arm become readable afterwards
    // (⊥ when the other path ran — a legal, deterministic value).
    for (Pool* p : {&then_pool, &else_pool}) {
      pool.regs.insert(pool.regs.end(),
                       p->regs.begin() + static_cast<std::ptrdiff_t>(base),
                       p->regs.end());
    }
    return result;
  }

  Fragment build_loop(const SysPlan& node, Pool& pool) {
    const std::uint32_t iters = std::max<std::uint32_t>(1, node.iters);
    // S_init: cnt := iters.
    const VertexId cnt = b_.reg(fresh("cnt"));
    const VertexId c_init = b_.constant(
        fresh("n" + std::to_string(iters)), static_cast<std::int64_t>(iters));
    const PlaceId s_init = b_.state(fresh("Sinit"));
    b_.arc(b_.out(c_init), b_.in(cnt), {s_init});

    // S_test: cnt != 0 (kNotUnit style — the counter is always defined).
    const PlaceId s_test = b_.state(fresh("Swhile"));
    const VertexId zero = b_.constant(fresh("z"), 0);
    const VertexId cmp = b_.unit(fresh("ne"), OpCode::kNe);
    b_.arc(b_.out(cnt), b_.in(cmp, 0), {s_test});
    b_.arc(b_.out(zero), b_.in(cmp, 1), {s_test});
    const VertexId inv = b_.unit(fresh("not"), OpCode::kNot);
    b_.arc(b_.out(cmp), b_.in(inv), {s_test});
    const VertexId flag = b_.reg(fresh("flag"));
    b_.arc(b_.out(cmp), b_.in(flag), {s_test});
    b_.chain(s_init, s_test, fresh("T"));

    // Body; the counter is *not* in the body pool (only this loop's init
    // and decrement states write it).
    const Fragment body = build(node.children.at(0), pool);
    const TransitionId t_body = b_.transition(fresh("Tloop"));
    b_.guard(t_body, b_.out(cmp));
    b_.flow(s_test, t_body);
    b_.flow(t_body, body.entry);

    // S_dec: cnt := cnt - 1, then back to the test.
    const PlaceId s_dec = b_.state(fresh("Sdec"));
    const VertexId one = b_.constant(fresh("one"), 1);
    const VertexId sub = b_.unit(fresh("dec"), OpCode::kSub);
    b_.arc(b_.out(cnt), b_.in(sub, 0), {s_dec});
    b_.arc(b_.out(one), b_.in(sub, 1), {s_dec});
    b_.arc(b_.out(sub), b_.in(cnt), {s_dec});
    attach(body.ends, s_dec);
    const TransitionId t_back = b_.transition(fresh("Tback"));
    b_.flow(s_dec, t_back);
    b_.flow(t_back, s_test);

    const TransitionId t_exit = b_.transition(fresh("Texit"));
    b_.guard(t_exit, b_.out(inv));
    b_.flow(s_test, t_exit);
    // The counter stays loop-private; body-created registers remain in
    // `pool` (the body ran at least... zero times — ⊥ reads are legal).
    return Fragment{s_init, {End{t_exit}}};
  }

  const SysPlan& plan_;
  const SystemGenOptions& opt_;
  std::string name_;
  dcf::SystemBuilder b_;
  std::size_t num_consts_ = 0;
  int counter_ = 0;
};

class PlanGen {
 public:
  PlanGen(Rng& rng, const SystemGenOptions& opt) : rng_(rng), opt_(opt) {}

  SysPlan run() {
    SysPlan root = seq(opt_.max_depth);
    if (plan_size(root) == 0) {
      root.children.insert(root.children.begin(), step());
    }
    return root;
  }

 private:
  SysPlan step() {
    SysPlan p;
    p.kind = PlanKind::kStep;
    p.op = static_cast<std::uint32_t>(rng_.below(1u << 16));
    p.src_a = static_cast<std::uint32_t>(rng_.below(1u << 16));
    p.src_b = static_cast<std::uint32_t>(rng_.below(1u << 16));
    p.src_c = static_cast<std::uint32_t>(rng_.below(1u << 16));
    return p;
  }

  SysPlan seq(std::size_t depth) {
    SysPlan p;
    p.kind = PlanKind::kSeq;
    const std::size_t n =
        1 + rng_.below(std::max<std::size_t>(1, opt_.max_seq));
    for (std::size_t i = 0; i < n; ++i) p.children.push_back(node(depth));
    return p;
  }

  SysPlan node(std::size_t depth) {
    if (depth == 0 || budget_ == 0 || rng_.chance(0.3)) return step();
    const double roll = rng_.uniform();
    if (roll < opt_.p_par) {
      --budget_;
      SysPlan p;
      p.kind = PlanKind::kPar;
      const std::size_t arms =
          2 + rng_.below(std::max<std::size_t>(2, opt_.max_par) - 1);
      for (std::size_t i = 0; i < arms; ++i) {
        p.children.push_back(seq(depth - 1));
      }
      return p;
    }
    if (roll < opt_.p_par + opt_.p_branch) {
      --budget_;
      SysPlan p;
      p.kind = PlanKind::kBranch;
      const double style = rng_.uniform();
      p.guard = style < 0.5 ? GuardStyle::kNotUnit
                : style < 0.8 ? GuardStyle::kComparePair
                              : GuardStyle::kLatchedPair;
      p.cmp_op = static_cast<std::uint32_t>(rng_.below(1u << 16));
      p.cmp_a = static_cast<std::uint32_t>(rng_.below(1u << 16));
      p.cmp_b = static_cast<std::uint32_t>(rng_.below(1u << 16));
      p.children.push_back(seq(depth - 1));
      if (rng_.chance(0.6)) p.children.push_back(seq(depth - 1));
      return p;
    }
    if (roll < opt_.p_par + opt_.p_branch + opt_.p_loop) {
      --budget_;
      SysPlan p;
      p.kind = PlanKind::kLoop;
      p.iters = 1 + static_cast<std::uint32_t>(rng_.below(
                        std::max<std::uint32_t>(1, opt_.max_loop_iters)));
      p.children.push_back(seq(depth - 1));
      return p;
    }
    return step();
  }

  Rng& rng_;
  const SystemGenOptions& opt_;
  std::size_t budget_ = 8;  ///< composite-node cap: bounds system size
};

void print_plan(const SysPlan& p, std::ostringstream& os) {
  switch (p.kind) {
    case PlanKind::kStep:
      os << "(step op=" << p.op % std::size(kStepOps) << " a=" << p.src_a
         << " b=" << p.src_b << " c=" << p.src_c << ")";
      return;
    case PlanKind::kSeq: os << "(seq"; break;
    case PlanKind::kPar: os << "(par"; break;
    case PlanKind::kBranch:
      os << "(branch g=" << static_cast<int>(p.guard)
         << " op=" << p.cmp_op << " a=" << p.cmp_a << " b=" << p.cmp_b;
      break;
    case PlanKind::kLoop: os << "(loop n=" << p.iters; break;
  }
  for (const SysPlan& c : p.children) {
    os << ' ';
    print_plan(c, os);
  }
  os << ')';
}

}  // namespace

SysPlan random_plan(Rng& rng, const SystemGenOptions& options) {
  return PlanGen(rng, options).run();
}

dcf::System build_system(const SysPlan& plan, const SystemGenOptions& options,
                         const std::string& name) {
  return SysBuilder(plan, options, name).run();
}

dcf::System random_system(std::uint64_t seed,
                          const SystemGenOptions& options) {
  Rng rng(seed);
  const SysPlan plan = random_plan(rng, options);
  return build_system(plan, options, "gensys_" + std::to_string(seed));
}

std::string plan_to_string(const SysPlan& plan) {
  std::ostringstream os;
  print_plan(plan, os);
  return os.str();
}

std::size_t plan_size(const SysPlan& plan) {
  if (plan.kind == PlanKind::kStep) return 1;
  std::size_t n = 0;
  for (const SysPlan& c : plan.children) n += plan_size(c);
  return n;
}

}  // namespace camad::gen
